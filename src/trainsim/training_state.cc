#include "trainsim/training_state.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"
#include "util/rng.h"

namespace pccheck {
namespace {

constexpr std::uint64_t kMarkerMagic = 0x50436368654B5031ULL;  // "PCcheKP1"

struct Marker {
    std::uint64_t magic_xor_offset;
    std::uint64_t iteration;
};

static_assert(sizeof(Marker) == 16);

}  // namespace

TrainingState::TrainingState(SimGpu& gpu, Bytes bytes)
    : gpu_(&gpu), ptr_(gpu.alloc(bytes))
{
    PCCHECK_CHECK_MSG(bytes >= sizeof(Marker),
                      "training state too small: " << bytes);
    stamp(0);
}

void
TrainingState::stamp(std::uint64_t iteration)
{
    stamp_buffer(gpu_->device_data(ptr_), ptr_.size, iteration);
    iteration_ = iteration;
    if (tracker_ != nullptr) {
        tracker_->mark_all();
    }
}

void
TrainingState::sparse_update(std::uint64_t iteration, double fraction,
                             std::uint64_t seed)
{
    const std::vector<Bytes> touched = sparse_update_buffer(
        gpu_->device_data(ptr_), ptr_.size, iteration, fraction, seed);
    iteration_ = iteration;
    if (tracker_ != nullptr) {
        for (const Bytes off : touched) {
            tracker_->mark(off,
                           std::min<Bytes>(kMarkerStride, ptr_.size - off));
        }
    }
}

void
TrainingState::restore(const std::uint8_t* data, Bytes len,
                       std::uint64_t iteration, bool pinned)
{
    PCCHECK_CHECK(len <= ptr_.size);
    gpu_->copy_to_device(ptr_, 0, data, len, pinned);
    iteration_ = iteration;
    if (tracker_ != nullptr) {
        tracker_->mark_all();
    }
}

void
TrainingState::stamp_buffer(std::uint8_t* data, Bytes len,
                            std::uint64_t iteration)
{
    for (Bytes off = 0; off + sizeof(Marker) <= len; off += kMarkerStride) {
        Marker marker{kMarkerMagic ^ off, iteration};
        std::memcpy(data + off, &marker, sizeof(marker));
    }
}

std::optional<std::uint64_t>
TrainingState::verify_buffer(const std::uint8_t* data, Bytes len,
                             Bytes base_offset)
{
    PCCHECK_CHECK_MSG(base_offset % kMarkerStride == 0,
                      "shard base offset must be marker-aligned");
    std::optional<std::uint64_t> iteration;
    for (Bytes off = 0; off + sizeof(Marker) <= len; off += kMarkerStride) {
        Marker marker;
        std::memcpy(&marker, data + off, sizeof(marker));
        if (marker.magic_xor_offset !=
            (kMarkerMagic ^ (base_offset + off))) {
            return std::nullopt;  // misplaced or corrupt
        }
        if (iteration.has_value() && *iteration != marker.iteration) {
            return std::nullopt;  // torn across iterations
        }
        iteration = marker.iteration;
    }
    return iteration;
}

std::vector<Bytes>
TrainingState::sparse_update_buffer(std::uint8_t* data, Bytes len,
                                    std::uint64_t iteration, double fraction,
                                    std::uint64_t seed)
{
    PCCHECK_CHECK_MSG(fraction > 0.0 && fraction <= 1.0,
                      "sparse fraction out of (0,1]: " << fraction);
    const Bytes units = (len + kMarkerStride - 1) / kMarkerStride;
    const auto count = std::max<Bytes>(
        1, static_cast<Bytes>(fraction * static_cast<double>(units) + 0.5));
    // Partial Fisher-Yates over the unit indices: a deterministic
    // sample without replacement, so `fraction` is exact per update.
    std::vector<Bytes> pool(units);
    for (Bytes u = 0; u < units; ++u) {
        pool[u] = u;
    }
    Rng rng(seed ^ (iteration * 0x9E3779B97F4A7C15ULL));
    std::vector<Bytes> touched;
    touched.reserve(static_cast<std::size_t>(count));
    for (Bytes k = 0; k < count && k < units; ++k) {
        const Bytes pick = k + rng.next_below(units - k);
        std::swap(pool[k], pool[pick]);
        const Bytes off = pool[k] * kMarkerStride;
        const Bytes unit_len = std::min<Bytes>(kMarkerStride, len - off);
        // Unit-specific fill byte: recovery tests rebuild the exact
        // image from (iteration, seed) on a shadow buffer and memcmp.
        std::memset(data + off,
                    static_cast<int>((iteration * 131 + pool[k] * 17) & 0xFF),
                    unit_len);
        if (unit_len >= sizeof(Marker)) {
            Marker marker{kMarkerMagic ^ off, iteration};
            std::memcpy(data + off, &marker, sizeof(marker));
        }
        touched.push_back(off);
    }
    return touched;
}

std::optional<std::uint64_t>
TrainingState::verify_buffer_sparse(const std::uint8_t* data, Bytes len,
                                    Bytes base_offset)
{
    PCCHECK_CHECK_MSG(base_offset % kMarkerStride == 0,
                      "shard base offset must be marker-aligned");
    std::optional<std::uint64_t> newest;
    for (Bytes off = 0; off + sizeof(Marker) <= len; off += kMarkerStride) {
        Marker marker;
        std::memcpy(&marker, data + off, sizeof(marker));
        if (marker.magic_xor_offset !=
            (kMarkerMagic ^ (base_offset + off))) {
            return std::nullopt;  // misplaced or corrupt
        }
        if (!newest.has_value() || marker.iteration > *newest) {
            newest = marker.iteration;
        }
    }
    return newest;
}

}  // namespace pccheck
