#ifndef PCCHECK_OBS_TRACE_H_
#define PCCHECK_OBS_TRACE_H_

/**
 * @file
 * Low-overhead span tracer for the checkpointing hot paths.
 *
 * Each instrumented scope records one complete span (begin/end
 * timestamp, thread id, up to two integer key/value args) into a
 * per-thread fixed-capacity buffer. Writers never take a lock and
 * never allocate on the hot path: a thread registers its buffer once
 * (under the registry mutex) and from then on appends with a single
 * release store of the buffer count. The exporter reads counts with
 * acquire loads, so concurrent capture while a run is still in flight
 * observes only fully written events.
 *
 * Tracing is off by default. The disabled path is a relaxed atomic
 * load and two pointer-sized stores — no clock read, no allocation —
 * so instrumentation can stay compiled into release builds.
 *
 * Usage:
 *   Tracer::global().set_enabled(true);
 *   {
 *       PCCHECK_TRACE_SPAN("persist.chunk", "slot", slot, "len", len);
 *       ... hot work ...
 *   }
 *   Tracer::global().write_file("trace.json");  // Chrome trace JSON
 *
 * The emitted JSON uses the Chrome trace-event format ("ph":"X"
 * complete events) and loads directly in ui.perfetto.dev or
 * chrome://tracing.
 */

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "util/annotations.h"

namespace pccheck {

/** One integer span annotation; the key must be a string literal. */
struct TraceArg {
    const char* key = nullptr;
    std::uint64_t value = 0;
};

/** One closed span. The name must be a string literal (stored by
 *  pointer; never copied). */
struct TraceEvent {
    const char* name = nullptr;
    std::uint64_t begin_ns = 0;
    std::uint64_t end_ns = 0;
    std::uint32_t nargs = 0;
    TraceArg args[2];
};

/**
 * Process-wide span collector. All methods are thread safe; record()
 * is wait-free after a thread's first event (single-writer buffer,
 * release-store publication).
 */
class Tracer {
  public:
    /** Events retained per thread; later events are counted as
     *  dropped, never torn. */
    static constexpr std::size_t kEventsPerThread = 1 << 16;

    Tracer();
    ~Tracer();
    Tracer(const Tracer&) = delete;
    Tracer& operator=(const Tracer&) = delete;

    /** Process-wide instance used by the PCCHECK_TRACE_SPAN macro. */
    static Tracer& global();

    /** Turn capture on/off. Spans opened while disabled record
     *  nothing even if tracing is re-enabled before they close. */
    void set_enabled(bool enabled);
    bool enabled() const
    {
        // relaxed: enable/disable is a coarse switch; a span racing
        // the flip harmlessly records or skips one event.
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Monotonic nanoseconds (steady clock; shared epoch for every
     *  thread in the process). */
    static std::uint64_t now_ns();

    /** Append one closed span for the calling thread. @p name and the
     *  arg keys must be string literals. No-op while disabled. */
    void record(const char* name, std::uint64_t begin_ns,
                std::uint64_t end_ns, const TraceArg* args,
                std::uint32_t nargs);

    /** Total events currently captured across all threads. */
    std::size_t event_count() const;

    /** Events discarded because a thread buffer filled up. */
    std::size_t dropped_count() const;

    /** Snapshot of every captured event (acquire-ordered; safe while
     *  writers are still recording). */
    std::vector<TraceEvent> snapshot() const;

    /** Write the capture as Chrome trace-event JSON. */
    void export_chrome_json(std::ostream& out) const;

    /** export_chrome_json to @p path; false on I/O failure. */
    bool write_file(const std::string& path) const;

    /**
     * Discard every captured event (buffers stay registered to their
     * threads). Only call while no instrumented code is running —
     * test isolation, not hot-path use.
     */
    void reset();

  private:
    struct ThreadBuffer;

    ThreadBuffer* buffer_for_this_thread();

    std::atomic<bool> enabled_{false};
    const std::uint64_t generation_;

    mutable Mutex registry_mu_;
    std::vector<std::unique_ptr<ThreadBuffer>> buffers_
        PCCHECK_GUARDED_BY(registry_mu_);
};

/**
 * RAII span: samples the clock at construction and records a complete
 * event at destruction. When the tracer is disabled at construction
 * the span is inert (its destructor does nothing).
 */
class TraceSpan {
  public:
    explicit TraceSpan(const char* name)
    {
        if (Tracer::global().enabled()) {
            name_ = name;
            begin_ns_ = Tracer::now_ns();
        }
    }
    TraceSpan(const char* name, const char* k0, std::uint64_t v0)
        : TraceSpan(name)
    {
        arg(k0, v0);
    }
    TraceSpan(const char* name, const char* k0, std::uint64_t v0,
              const char* k1, std::uint64_t v1)
        : TraceSpan(name)
    {
        arg(k0, v0);
        arg(k1, v1);
    }
    ~TraceSpan()
    {
        if (name_ != nullptr) {
            Tracer::global().record(name_, begin_ns_, Tracer::now_ns(),
                                    args_, nargs_);
        }
    }
    TraceSpan(const TraceSpan&) = delete;
    TraceSpan& operator=(const TraceSpan&) = delete;

    /** Attach a key/value after construction (e.g. an outcome flag).
     *  Silently ignored past two args or while inert. */
    void arg(const char* key, std::uint64_t value)
    {
        if (name_ != nullptr && nargs_ < 2) {
            args_[nargs_++] = TraceArg{key, value};
        }
    }

  private:
    const char* name_ = nullptr;
    std::uint64_t begin_ns_ = 0;
    std::uint32_t nargs_ = 0;
    TraceArg args_[2];
};

#define PCCHECK_TRACE_CONCAT_IMPL(a, b) a##b
#define PCCHECK_TRACE_CONCAT(a, b) PCCHECK_TRACE_CONCAT_IMPL(a, b)

/** Open a span for the rest of the enclosing scope:
 *  PCCHECK_TRACE_SPAN("name") or
 *  PCCHECK_TRACE_SPAN("name", "key", value[, "key2", value2]). */
#define PCCHECK_TRACE_SPAN(...)                                          \
    ::pccheck::TraceSpan PCCHECK_TRACE_CONCAT(pccheck_trace_span_,       \
                                              __COUNTER__)(__VA_ARGS__)

}  // namespace pccheck

#endif  // PCCHECK_OBS_TRACE_H_
