#ifndef PCCHECK_OBS_STAGE_H_
#define PCCHECK_OBS_STAGE_H_

/**
 * @file
 * StageSpan: one RAII scope that feeds both observability sinks with a
 * single pair of clock reads — the always-on stage LatencyHistogram in
 * MetricsRegistry (p50/p95/p99 per stage) and, when tracing is
 * enabled, a span in the Chrome-trace capture.
 *
 * Usage at a hot-path stage boundary:
 *   static LatencyHistogram& hist =
 *       MetricsRegistry::global().histogram("pccheck.stage.commit");
 *   StageSpan span("commit.cas", hist, "counter", ticket.counter);
 */

#include "obs/trace.h"
#include "util/metrics.h"

namespace pccheck {

/** Times a scope into a stage histogram and (optionally) the tracer. */
class StageSpan {
  public:
    StageSpan(const char* span_name, LatencyHistogram& hist)
        : hist_(&hist), name_(span_name),
          traced_(Tracer::global().enabled()),
          begin_ns_(Tracer::now_ns())
    {
    }
    StageSpan(const char* span_name, LatencyHistogram& hist,
              const char* k0, std::uint64_t v0)
        : StageSpan(span_name, hist)
    {
        arg(k0, v0);
    }
    StageSpan(const char* span_name, LatencyHistogram& hist,
              const char* k0, std::uint64_t v0, const char* k1,
              std::uint64_t v1)
        : StageSpan(span_name, hist)
    {
        arg(k0, v0);
        arg(k1, v1);
    }
    ~StageSpan()
    {
        const std::uint64_t end_ns = Tracer::now_ns();
        hist_->observe(static_cast<double>(end_ns - begin_ns_) / 1e9);
        if (traced_) {
            Tracer::global().record(name_, begin_ns_, end_ns, args_,
                                    nargs_);
        }
    }
    StageSpan(const StageSpan&) = delete;
    StageSpan& operator=(const StageSpan&) = delete;

    /** Attach a key/value after construction (ignored past two). */
    void arg(const char* key, std::uint64_t value)
    {
        if (nargs_ < 2) {
            args_[nargs_++] = TraceArg{key, value};
        }
    }

  private:
    LatencyHistogram* hist_;
    const char* name_;
    bool traced_;
    std::uint64_t begin_ns_;
    std::uint32_t nargs_ = 0;
    TraceArg args_[2];
};

}  // namespace pccheck

#endif  // PCCHECK_OBS_STAGE_H_
