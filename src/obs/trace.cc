#include "obs/trace.h"

#include <chrono>
#include <fstream>

namespace pccheck {
namespace {

/** Distinguishes tracer instances so a thread-local buffer pointer
 *  cached against a destroyed tracer is never reused, even if a new
 *  tracer lands at the same address. */
std::atomic<std::uint64_t> g_tracer_generation{1};

struct ThreadCache {
    std::uint64_t generation = 0;
    void* buffer = nullptr;
};

thread_local ThreadCache t_cache;

void
append_json_escaped(std::string& out, const char* s)
{
    for (; *s != '\0'; ++s) {
        const char c = *s;
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            out += "\\u0020";  // control chars never appear in span names
        } else {
            out.push_back(c);
        }
    }
}

}  // namespace

/**
 * Single-writer event buffer. The owning thread stores events[i] then
 * publishes with a release store of count = i + 1; readers acquire
 * count and may touch only events[0, count).
 */
struct Tracer::ThreadBuffer {
    explicit ThreadBuffer(std::uint32_t tid_in) : tid(tid_in)
    {
        events.resize(kEventsPerThread);
    }

    std::uint32_t tid;
    std::atomic<std::size_t> count{0};
    std::atomic<std::size_t> dropped{0};
    std::vector<TraceEvent> events;
};

Tracer::Tracer()
    // relaxed: only uniqueness of the generation id matters.
    : generation_(
          g_tracer_generation.fetch_add(1, std::memory_order_relaxed))
{
}

Tracer::~Tracer() = default;

Tracer&
Tracer::global()
{
    static Tracer tracer;
    return tracer;
}

void
Tracer::set_enabled(bool enabled)
{
    // relaxed: see enabled() — coarse switch, no data ordering.
    enabled_.store(enabled, std::memory_order_relaxed);
}

std::uint64_t
Tracer::now_ns()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

Tracer::ThreadBuffer*
Tracer::buffer_for_this_thread()
{
    if (t_cache.generation == generation_) {
        return static_cast<ThreadBuffer*>(t_cache.buffer);
    }
    MutexLock lock(registry_mu_);
    auto buffer = std::make_unique<ThreadBuffer>(
        static_cast<std::uint32_t>(buffers_.size()));
    ThreadBuffer* raw = buffer.get();
    buffers_.push_back(std::move(buffer));
    t_cache.generation = generation_;
    t_cache.buffer = raw;
    return raw;
}

void
Tracer::record(const char* name, std::uint64_t begin_ns,
               std::uint64_t end_ns, const TraceArg* args,
               std::uint32_t nargs)
{
    if (!enabled()) {
        return;
    }
    ThreadBuffer* buffer = buffer_for_this_thread();
    // relaxed: count is only ever advanced by this (owner) thread;
    // readers use the acquire load in the snapshot paths.
    const std::size_t index =
        buffer->count.load(std::memory_order_relaxed);
    if (index >= buffer->events.size()) {
        // relaxed: independent statistic, no ordering required.
        buffer->dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    TraceEvent& event = buffer->events[index];
    event.name = name;
    event.begin_ns = begin_ns;
    event.end_ns = end_ns;
    event.nargs = nargs > 2 ? 2 : nargs;
    for (std::uint32_t i = 0; i < event.nargs; ++i) {
        event.args[i] = args[i];
    }
    buffer->count.store(index + 1, std::memory_order_release);
}

std::size_t
Tracer::event_count() const
{
    MutexLock lock(registry_mu_);
    std::size_t total = 0;
    for (const auto& buffer : buffers_) {
        total += buffer->count.load(std::memory_order_acquire);
    }
    return total;
}

std::size_t
Tracer::dropped_count() const
{
    MutexLock lock(registry_mu_);
    std::size_t total = 0;
    for (const auto& buffer : buffers_) {
        // relaxed: independent statistic, no ordering required.
        total += buffer->dropped.load(std::memory_order_relaxed);
    }
    return total;
}

std::vector<TraceEvent>
Tracer::snapshot() const
{
    MutexLock lock(registry_mu_);
    std::vector<TraceEvent> out;
    for (const auto& buffer : buffers_) {
        const std::size_t n =
            buffer->count.load(std::memory_order_acquire);
        out.insert(out.end(), buffer->events.begin(),
                   buffer->events.begin() +
                       static_cast<std::ptrdiff_t>(n));
    }
    return out;
}

void
Tracer::export_chrome_json(std::ostream& out) const
{
    MutexLock lock(registry_mu_);
    std::string json;
    json.reserve(1 << 16);
    json += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (const auto& buffer : buffers_) {
        const std::size_t n =
            buffer->count.load(std::memory_order_acquire);
        for (std::size_t i = 0; i < n; ++i) {
            const TraceEvent& event = buffer->events[i];
            if (!first) {
                json += ",";
            }
            first = false;
            json += "\n{\"name\":\"";
            append_json_escaped(json, event.name);
            json += "\",\"cat\":\"pccheck\",\"ph\":\"X\",\"pid\":1,"
                    "\"tid\":";
            json += std::to_string(buffer->tid);
            // Chrome trace timestamps are microseconds; keep ns
            // resolution with a fractional part.
            json += ",\"ts\":";
            json += std::to_string(
                static_cast<double>(event.begin_ns) / 1e3);
            json += ",\"dur\":";
            json += std::to_string(
                static_cast<double>(event.end_ns - event.begin_ns) /
                1e3);
            if (event.nargs > 0) {
                json += ",\"args\":{";
                for (std::uint32_t a = 0; a < event.nargs; ++a) {
                    if (a > 0) {
                        json += ",";
                    }
                    json += "\"";
                    append_json_escaped(json, event.args[a].key);
                    json += "\":";
                    json += std::to_string(event.args[a].value);
                }
                json += "}";
            }
            json += "}";
        }
    }
    json += "\n]}\n";
    out << json;
}

bool
Tracer::write_file(const std::string& path) const
{
    std::ofstream out(path);
    if (!out) {
        return false;
    }
    export_chrome_json(out);
    return out.good();
}

void
Tracer::reset()
{
    MutexLock lock(registry_mu_);
    for (auto& buffer : buffers_) {
        buffer->count.store(0, std::memory_order_release);
        // relaxed: independent statistic, no ordering required.
        buffer->dropped.store(0, std::memory_order_relaxed);
    }
}

}  // namespace pccheck
