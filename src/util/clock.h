#ifndef PCCHECK_UTIL_CLOCK_H_
#define PCCHECK_UTIL_CLOCK_H_

/**
 * @file
 * Time sources.
 *
 * The library measures everything against a Clock interface so that the
 * same code can run under the real monotonic clock (tests, examples,
 * microbenchmarks) or under an accelerated clock (scaled benchmark
 * sweeps). Durations are kept in double seconds at API boundaries for
 * readability of the performance-model code, which mirrors the paper's
 * notation (t, Tw, l, ...).
 */

#include <chrono>
#include <cstdint>

namespace pccheck {

/** Duration in seconds, matching the paper's analytical notation. */
using Seconds = double;

/** Abstract monotonic time source. */
class Clock {
  public:
    virtual ~Clock() = default;

    /** Seconds since an arbitrary, fixed epoch. */
    virtual Seconds now() const = 0;

    /** Block the calling thread for @p duration seconds. */
    virtual void sleep_for(Seconds duration) const = 0;
};

/** Real monotonic clock backed by std::chrono::steady_clock. */
class MonotonicClock final : public Clock {
  public:
    Seconds now() const override;
    void sleep_for(Seconds duration) const override;

    /** Process-wide instance (stateless, safe to share). */
    static const MonotonicClock& instance();
};

/**
 * Scaled wrapper: time appears to pass @p factor times faster than the
 * underlying clock, and sleeps are shortened accordingly. Used to run
 * paper-scale experiments (minutes of modeled time) in milliseconds
 * while preserving every duration ratio.
 */
class ScaledClock final : public Clock {
  public:
    /**
     * @param base underlying clock (not owned; must outlive this)
     * @param factor acceleration factor (> 0); 1000 means one real
     *        millisecond counts as one modeled second
     */
    ScaledClock(const Clock& base, double factor);

    Seconds now() const override;
    void sleep_for(Seconds duration) const override;

    double factor() const { return factor_; }

  private:
    const Clock& base_;
    double factor_;
};

/** Stopwatch over an arbitrary clock. */
class Stopwatch {
  public:
    /** Starts immediately. @p clock must outlive the stopwatch. */
    explicit Stopwatch(const Clock& clock = MonotonicClock::instance())
        : clock_(&clock), start_(clock.now()) {}

    /** Seconds elapsed since construction or the last reset(). */
    Seconds elapsed() const { return clock_->now() - start_; }

    /** Restart timing from now. */
    void reset() { start_ = clock_->now(); }

  private:
    const Clock* clock_;
    Seconds start_;
};

}  // namespace pccheck

#endif  // PCCHECK_UTIL_CLOCK_H_
