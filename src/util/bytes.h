#ifndef PCCHECK_UTIL_BYTES_H_
#define PCCHECK_UTIL_BYTES_H_

/**
 * @file
 * Byte-size literals, conversion helpers, and human-readable formatting.
 */

#include <cstdint>
#include <string>

namespace pccheck {

/** Byte count. Signed arithmetic on sizes is avoided by construction. */
using Bytes = std::uint64_t;

inline constexpr Bytes kKiB = 1024ULL;
inline constexpr Bytes kMiB = 1024ULL * kKiB;
inline constexpr Bytes kGiB = 1024ULL * kMiB;

/** 1.5_gib style helpers (paper sizes are decimal GB; we keep both). */
inline constexpr Bytes kKB = 1000ULL;
inline constexpr Bytes kMB = 1000ULL * kKB;
inline constexpr Bytes kGB = 1000ULL * kMB;

namespace literals {

constexpr Bytes operator""_kib(unsigned long long v) { return v * kKiB; }
constexpr Bytes operator""_mib(unsigned long long v) { return v * kMiB; }
constexpr Bytes operator""_gib(unsigned long long v) { return v * kGiB; }
constexpr Bytes operator""_kb(unsigned long long v) { return v * kKB; }
constexpr Bytes operator""_mb(unsigned long long v) { return v * kMB; }
constexpr Bytes operator""_gb(unsigned long long v) { return v * kGB; }

}  // namespace literals

/**
 * Format a byte count with a binary-unit suffix, e.g. "1.50 GiB".
 *
 * @param n byte count
 * @return human-readable string with two decimals
 */
std::string format_bytes(Bytes n);

/** Round @p n up to the next multiple of @p align (align must be > 0). */
constexpr Bytes
align_up(Bytes n, Bytes align)
{
    return (n + align - 1) / align * align;
}

/** Round @p n down to a multiple of @p align (align must be > 0). */
constexpr Bytes
align_down(Bytes n, Bytes align)
{
    return n / align * align;
}

}  // namespace pccheck

#endif  // PCCHECK_UTIL_BYTES_H_
