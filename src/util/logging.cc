#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace pccheck {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

const char*
level_name(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
    }
    return "?";
}

}  // namespace

void
set_log_level(LogLevel level)
{
    // relaxed: the level is an independent filter flag; a logger
    // observing it one message late is harmless.
    g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel
log_level()
{
    // relaxed: see set_log_level — no ordering with logged data needed.
    return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace detail {

void
log_emit(LogLevel level, const std::string& msg)
{
    std::fprintf(stderr, "[pccheck %s] %s\n", level_name(level), msg.c_str());
}

}  // namespace detail
}  // namespace pccheck
