#ifndef PCCHECK_UTIL_METRICS_H_
#define PCCHECK_UTIL_METRICS_H_

/**
 * @file
 * Lightweight metrics registry: named monotonic counters and gauges
 * that subsystems (GPU, storage, orchestrator) register and the
 * benches/examples dump. Counters are lock-free on the hot path;
 * registration and enumeration take a registry mutex.
 *
 * Usage:
 *   Counter& bytes = MetricsRegistry::global().counter("ssd.bytes");
 *   bytes.add(n);
 *   MetricsRegistry::global().dump(std::cout);
 */

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace pccheck {

/** Monotonic counter; thread safe, relaxed ordering. */
class Counter {
  public:
    void add(std::uint64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }
    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-value gauge (double); thread safe. */
class Gauge {
  public:
    void set(double value)
    {
        value_.store(value, std::memory_order_relaxed);
    }
    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0};
};

/** Named registry of counters and gauges. */
class MetricsRegistry {
  public:
    /** Process-wide registry (modules default to this). */
    static MetricsRegistry& global();

    /** Find-or-create; returned reference lives as long as the
     *  registry. Thread safe. */
    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);

    /** Snapshot of (name, value) pairs, sorted by name. */
    std::vector<std::pair<std::string, double>> snapshot() const;

    /** Human-readable dump, one metric per line. */
    void dump(std::ostream& out) const;

    /** Reset every counter/gauge to zero (test isolation). */
    void reset();

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
};

}  // namespace pccheck

#endif  // PCCHECK_UTIL_METRICS_H_
