#ifndef PCCHECK_UTIL_METRICS_H_
#define PCCHECK_UTIL_METRICS_H_

/**
 * @file
 * Lightweight metrics registry: named monotonic counters and gauges
 * that subsystems (GPU, storage, orchestrator) register and the
 * benches/examples dump. Counters are lock-free on the hot path;
 * registration and enumeration take a registry mutex.
 *
 * Usage:
 *   Counter& bytes = MetricsRegistry::global().counter("ssd.bytes");
 *   bytes.add(n);
 *   MetricsRegistry::global().dump(std::cout);
 */

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "util/annotations.h"
#include "util/stats.h"

namespace pccheck {

/** Monotonic counter; thread safe, relaxed ordering. */
class Counter {
  public:
    void add(std::uint64_t delta = 1)
    {
        // relaxed: independent monotonic counter; readers only need an
        // eventually consistent total, no ordering with other data.
        value_.fetch_add(delta, std::memory_order_relaxed);
    }
    std::uint64_t value() const
    {
        // relaxed: monitoring read; staleness is acceptable.
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-value gauge (double); thread safe. */
class Gauge {
  public:
    void set(double value)
    {
        // relaxed: last-writer-wins gauge; no ordering with other data.
        value_.store(value, std::memory_order_relaxed);
    }
    double value() const
    {
        // relaxed: monitoring read; staleness is acceptable.
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0};
};

/**
 * Mutex-wrapped latency Histogram for stage timings (seconds).
 * Observations are expected to be sub-second; samples past the range
 * saturate into the overflow bucket, so quantiles clamp at the upper
 * bound instead of losing data silently.
 */
class LatencyHistogram {
  public:
    /** Default range: [0, 2) s, ~0.24 ms resolution. */
    LatencyHistogram(double lo = 0.0, double hi = 2.0,
                     std::size_t buckets = 8192);

    void observe(double seconds);
    std::size_t count() const;

    /** p50/p95/p99 digest under the lock. */
    HistogramSummary summary() const;

  private:
    mutable Mutex mu_;
    Histogram hist_ PCCHECK_GUARDED_BY(mu_);
};

/** Named registry of counters, gauges, and stage histograms. */
class MetricsRegistry {
  public:
    /** Process-wide registry (modules default to this). */
    static MetricsRegistry& global();

    /** Find-or-create; returned reference lives as long as the
     *  registry. Thread safe. */
    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    LatencyHistogram& histogram(const std::string& name);

    /** Snapshot of (name, value) pairs, sorted by name. Histograms
     *  contribute <name>.count/.p50/.p95/.p99 entries. */
    std::vector<std::pair<std::string, double>> snapshot() const;

    /** Human-readable dump, one metric per line; histograms print
     *  count and p50/p95/p99. */
    void dump(std::ostream& out) const;

    /** Reset every counter/gauge/histogram to zero (test isolation). */
    void reset();

  private:
    mutable Mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_
        PCCHECK_GUARDED_BY(mu_);
    std::map<std::string, std::unique_ptr<Gauge>> gauges_
        PCCHECK_GUARDED_BY(mu_);
    std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_
        PCCHECK_GUARDED_BY(mu_);
};

}  // namespace pccheck

#endif  // PCCHECK_UTIL_METRICS_H_
