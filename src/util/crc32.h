#ifndef PCCHECK_UTIL_CRC32_H_
#define PCCHECK_UTIL_CRC32_H_

/**
 * @file
 * CRC-32C (Castagnoli) used to validate checkpoint data and pointer
 * records during recovery. Table-driven; no hardware dependency.
 */

#include <cstddef>
#include <cstdint>

namespace pccheck {

/**
 * Compute CRC-32C over @p len bytes at @p data.
 * @param seed previous crc for incremental computation (0 to start)
 */
std::uint32_t crc32c(const void* data, std::size_t len,
                     std::uint32_t seed = 0);

}  // namespace pccheck

#endif  // PCCHECK_UTIL_CRC32_H_
