#ifndef PCCHECK_UTIL_SYNC_H_
#define PCCHECK_UTIL_SYNC_H_

/**
 * @file
 * The atomics seam between production builds and the model checker.
 *
 * Algorithm-bearing code (src/core/, the lock-free queues it builds
 * on) declares its shared words as pccheck::Atomic<T> instead of
 * std::atomic<T>:
 *
 *  - in production builds, Atomic<T> IS std::atomic<T> (a template
 *    alias — zero overhead, identical codegen, enforced by the
 *    static_assert below);
 *  - under -DPCCHECK_MC it becomes pccheck::mc::Atomic<T>
 *    (src/mc/shim.h), whose every load/store/RMW is a schedule point
 *    the cooperative mc::Scheduler can preempt, so the checker
 *    explores thread interleavings deterministically instead of
 *    sampling them.
 *
 * Memory-order arguments keep their std::memory_order type in both
 * configurations. The checker explores sequentially consistent
 * interleavings; std::memory_order_relaxed operations are treated as
 * non-preemption points (monitoring counters — see the relaxed-
 * justification lint rule and docs/MODEL_CHECKING.md).
 *
 * tools/pccheck_lint.py rule raw-atomic-in-core rejects direct
 * std::atomic/std::mutex use in src/core/ so new code cannot bypass
 * the seam.
 */

#include <atomic>
#include <cstdint>

#if defined(PCCHECK_MC)

#include "mc/shim.h"

namespace pccheck {

template <typename T>
using Atomic = mc::Atomic<T>;

}  // namespace pccheck

#else  // !PCCHECK_MC

namespace pccheck {

template <typename T>
using Atomic = std::atomic<T>;

// The seam must be free in production: the alias IS std::atomic.
static_assert(std::is_same_v<Atomic<std::uint64_t>,
                             std::atomic<std::uint64_t>>,
              "production Atomic<T> must be exactly std::atomic<T>");

}  // namespace pccheck

#endif  // PCCHECK_MC

#endif  // PCCHECK_UTIL_SYNC_H_
