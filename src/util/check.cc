#include "util/check.h"

#include <cstdio>
#include <cstdlib>

namespace pccheck {

void
fatal(const std::string& msg)
{
    throw FatalError(msg);
}

namespace detail {

void
check_failed(const char* file, int line, const char* expr,
             const std::string& msg)
{
    std::fprintf(stderr, "PCCHECK_CHECK failed at %s:%d: %s%s%s\n", file,
                 line, expr, msg.empty() ? "" : " — ", msg.c_str());
    std::fflush(stderr);
    std::abort();
}

}  // namespace detail
}  // namespace pccheck
