#include "util/csv.h"

#include <sstream>

#include "util/check.h"

namespace pccheck {

std::string
csv_escape(const std::string& field)
{
    if (field.find_first_of(",\"\n") == std::string::npos) {
        return field;
    }
    std::string out = "\"";
    for (char c : field) {
        if (c == '"') {
            out += "\"\"";
        } else {
            out += c;
        }
    }
    out += '"';
    return out;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : path_(path), out_(path, std::ios::trunc), arity_(header.size())
{
    if (!out_) {
        fatal("CsvWriter: cannot open " + path);
    }
    write_line(header);
}

void
CsvWriter::row(const std::vector<std::string>& values)
{
    PCCHECK_CHECK_MSG(values.size() == arity_,
                      "CSV row arity " << values.size() << " != header arity "
                                       << arity_);
    write_line(values);
}

void
CsvWriter::row_numeric(const std::string& label,
                       const std::vector<double>& values)
{
    std::vector<std::string> fields;
    fields.reserve(values.size() + 1);
    fields.push_back(label);
    for (double v : values) {
        std::ostringstream oss;
        oss << v;
        fields.push_back(oss.str());
    }
    row(fields);
}

void
CsvWriter::write_line(const std::vector<std::string>& values)
{
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i) {
            out_ << ',';
        }
        out_ << csv_escape(values[i]);
    }
    out_ << '\n';
    out_.flush();
}

}  // namespace pccheck
