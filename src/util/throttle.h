#ifndef PCCHECK_UTIL_THROTTLE_H_
#define PCCHECK_UTIL_THROTTLE_H_

/**
 * @file
 * Bandwidth throttle modeling a shared transfer channel (PCIe link,
 * SSD, PMEM, network). Concurrent callers share the channel: each
 * acquire() reserves the next slice of channel time and blocks until
 * that slice has elapsed, so aggregate throughput never exceeds the
 * configured bandwidth regardless of thread count. This is the single
 * mechanism by which the repository emulates device speeds.
 */

#include "util/annotations.h"
#include "util/bytes.h"
#include "util/clock.h"

namespace pccheck {

/** Shared-channel bandwidth limiter; thread safe. */
class BandwidthThrottle {
  public:
    /**
     * @param bytes_per_sec channel bandwidth; 0 disables throttling
     * @param clock time source used for pacing (must outlive this)
     */
    explicit BandwidthThrottle(
        double bytes_per_sec,
        const Clock& clock = MonotonicClock::instance());

    /**
     * Account for a transfer of @p n bytes, blocking until the channel
     * has "moved" them. Returns the modeled transfer duration for this
     * request in seconds (including queueing behind other callers).
     */
    Seconds acquire(Bytes n);

    double bytes_per_sec() const;

    /** Change the channel bandwidth; affects future acquisitions. */
    void set_bytes_per_sec(double bytes_per_sec);

  private:
    const Clock& clock_;
    mutable Mutex mu_;
    /** Guarded: set_bytes_per_sec() may race acquire() otherwise (the
     *  unguarded read was a real race the thread-safety pass flagged). */
    double bytes_per_sec_ PCCHECK_GUARDED_BY(mu_);
    Seconds cursor_ PCCHECK_GUARDED_BY(mu_) =
        0.0;  ///< time at which the channel becomes free
};

}  // namespace pccheck

#endif  // PCCHECK_UTIL_THROTTLE_H_
