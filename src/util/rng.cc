#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace pccheck {
namespace {

std::uint64_t
splitmix64(std::uint64_t& x)
{
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed)
{
    for (auto& s : state_) {
        s = splitmix64(seed);
    }
}

std::uint64_t
Rng::next_u64()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::uint64_t
Rng::next_below(std::uint64_t bound)
{
    PCCHECK_CHECK(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    while (true) {
        const std::uint64_t r = next_u64();
        if (r >= threshold) {
            return r % bound;
        }
    }
}

double
Rng::next_double()
{
    // 53 random mantissa bits.
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * next_double();
}

double
Rng::exponential(double mean)
{
    PCCHECK_CHECK(mean > 0);
    double u;
    do {
        u = next_double();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

double
Rng::normal(double mean, double stddev)
{
    double u1;
    do {
        u1 = next_double();
    } while (u1 <= 0.0);
    const double u2 = next_double();
    const double z = std::sqrt(-2.0 * std::log(u1)) *
                     std::cos(2.0 * M_PI * u2);
    return mean + stddev * z;
}

bool
Rng::chance(double p)
{
    return next_double() < p;
}

}  // namespace pccheck
