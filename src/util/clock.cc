#include "util/clock.h"

#include <thread>

#include "util/check.h"

namespace pccheck {

Seconds
MonotonicClock::now() const
{
    auto tp = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration<double>(tp).count();
}

void
MonotonicClock::sleep_for(Seconds duration) const
{
    if (duration <= 0) {
        return;
    }
    // OS sleeps overshoot by scheduler slack (~100 µs here), which
    // would systematically inflate every modeled duration. Sleep
    // coarsely, then yield-spin the final slack for precision; yields
    // keep sibling threads runnable on small machines.
    constexpr Seconds kSlack = 300e-6;
    const Seconds deadline = now() + duration;
    if (duration > kSlack) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(duration - kSlack));
    }
    while (now() < deadline) {
        std::this_thread::yield();
    }
}

const MonotonicClock&
MonotonicClock::instance()
{
    static const MonotonicClock clock;
    return clock;
}

ScaledClock::ScaledClock(const Clock& base, double factor)
    : base_(base), factor_(factor)
{
    PCCHECK_CHECK_MSG(factor > 0, "scale factor must be positive, got "
                                      << factor);
}

Seconds
ScaledClock::now() const
{
    return base_.now() * factor_;
}

void
ScaledClock::sleep_for(Seconds duration) const
{
    base_.sleep_for(duration / factor_);
}

}  // namespace pccheck
