#ifndef PCCHECK_UTIL_RNG_H_
#define PCCHECK_UTIL_RNG_H_

/**
 * @file
 * Deterministic, seedable random number generator.
 *
 * All stochastic behaviour in the repository (trace generation,
 * failure injection, property tests) flows through Rng so that every
 * experiment is reproducible from a single seed. Implementation is
 * xoshiro256** (public domain, Blackman & Vigna), which is fast and has
 * no global state.
 */

#include <cstdint>

namespace pccheck {

/** Small, fast, deterministic PRNG (xoshiro256**). */
class Rng {
  public:
    /** Seed via splitmix64 expansion of @p seed. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next_u64();

    /** Uniform in [0, bound). @p bound must be > 0. */
    std::uint64_t next_below(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double next_double();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Exponentially distributed value with the given mean (> 0). */
    double exponential(double mean);

    /** Standard normal via Box–Muller. */
    double normal(double mean, double stddev);

    /** Bernoulli trial with probability @p p of returning true. */
    bool chance(double p);

  private:
    std::uint64_t state_[4];
};

}  // namespace pccheck

#endif  // PCCHECK_UTIL_RNG_H_
