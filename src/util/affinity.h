#ifndef PCCHECK_UTIL_AFFINITY_H_
#define PCCHECK_UTIL_AFFINITY_H_

/**
 * @file
 * Thread-affinity helpers. The artifact appendix notes "PCcheck uses
 * thread pinning to specific cores for higher performance" — writer
 * threads benefit from staying on the NUMA node of the staging
 * buffers and the PMEM DIMMs. Pinning is best effort: on machines
 * with fewer cores than requested (or non-Linux), calls degrade to
 * no-ops and report false.
 */

namespace pccheck {

/** Number of CPUs available to this process. */
int available_cpus();

/**
 * Pin the calling thread to @p cpu (modulo the available CPUs).
 * @return true if the affinity change took effect
 */
bool pin_current_thread(int cpu);

/** Remove any affinity restriction from the calling thread. */
bool unpin_current_thread();

}  // namespace pccheck

#endif  // PCCHECK_UTIL_AFFINITY_H_
