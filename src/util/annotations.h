#ifndef PCCHECK_UTIL_ANNOTATIONS_H_
#define PCCHECK_UTIL_ANNOTATIONS_H_

/**
 * @file
 * Clang Thread Safety Analysis annotations and the annotated locking
 * primitives every PCcheck component must use.
 *
 * The commit protocol's invariants (persist-before-publish, "one
 * durable checkpoint always exists", slot recycling only after the
 * newer pointer record is durable) are easy to violate silently —
 * checkpointing bugs surface as corrupt recovery state, not crashes.
 * This header turns the lock-discipline half of those invariants into
 * compile-time checks: build with a Clang toolchain and
 * -DPCCHECK_THREAD_SAFETY=ON and every access to a PCCHECK_GUARDED_BY
 * member outside its mutex is a hard error (-Werror=thread-safety-
 * analysis). Under GCC the macros expand to nothing and the wrappers
 * cost exactly one std::mutex / std::condition_variable_any.
 *
 * Conventions (enforced by tools/pccheck_lint.py, see
 * docs/STATIC_ANALYSIS.md):
 *  - never use std::mutex / std::lock_guard / std::condition_variable
 *    directly outside this header — use Mutex / MutexLock / CondVar;
 *  - annotate every mutex-protected member with PCCHECK_GUARDED_BY;
 *  - functions that expect the caller to hold a lock take
 *    PCCHECK_REQUIRES(mu) (name them *_locked);
 *  - condition-variable waits re-check their predicate in a while
 *    loop directly in the annotated function body (no predicate
 *    lambdas — the analysis cannot see a lambda's lock context).
 */

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define PCCHECK_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PCCHECK_THREAD_ANNOTATION(x)  // no-op: GCC has no TSA
#endif

/** Marks a type as a lockable capability ("mutex"). */
#define PCCHECK_CAPABILITY(x) PCCHECK_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type that acquires on construction, releases on
 *  destruction. */
#define PCCHECK_SCOPED_CAPABILITY PCCHECK_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only while holding @p x. */
#define PCCHECK_GUARDED_BY(x) PCCHECK_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose pointee is protected by @p x. */
#define PCCHECK_PT_GUARDED_BY(x) PCCHECK_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function that must be called with the capability held. */
#define PCCHECK_REQUIRES(...) \
    PCCHECK_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function that acquires the capability (held on return). */
#define PCCHECK_ACQUIRE(...) \
    PCCHECK_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function that conditionally acquires; first arg is the success
 *  return value. */
#define PCCHECK_TRY_ACQUIRE(...) \
    PCCHECK_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Function that releases the capability. */
#define PCCHECK_RELEASE(...) \
    PCCHECK_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function that must be called WITHOUT the capability held
 *  (deadlock prevention, e.g. callbacks that re-enter). */
#define PCCHECK_EXCLUDES(...) \
    PCCHECK_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Runtime assertion that the capability is held (trusted). */
#define PCCHECK_ASSERT_CAPABILITY(x) \
    PCCHECK_THREAD_ANNOTATION(assert_capability(x))

/** Accessor returning a reference to the capability. */
#define PCCHECK_RETURN_CAPABILITY(x) \
    PCCHECK_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch; every use needs a justification comment. */
#define PCCHECK_NO_THREAD_SAFETY_ANALYSIS \
    PCCHECK_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace pccheck {

/**
 * Capability-annotated mutex. A thin shim over std::mutex (same
 * layout, same cost) that the analysis can track. Also a
 * BasicLockable, so CondVar can unlock/relock it while waiting.
 */
class PCCHECK_CAPABILITY("mutex") Mutex {
  public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() PCCHECK_ACQUIRE() { mu_.lock(); }
    void unlock() PCCHECK_RELEASE() { mu_.unlock(); }
    bool try_lock() PCCHECK_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  private:
    std::mutex mu_;
};

/**
 * RAII lock over Mutex (the annotated std::lock_guard). Scope blocks
 * delimit the critical section:
 *
 *   {
 *       MutexLock lock(mu_);
 *       guarded_member_ = ...;   // OK: analysis sees mu_ held
 *   }
 */
class PCCHECK_SCOPED_CAPABILITY MutexLock {
  public:
    explicit MutexLock(Mutex& mu) PCCHECK_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }
    ~MutexLock() PCCHECK_RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

  private:
    Mutex& mu_;
};

/**
 * Condition variable paired with Mutex. wait() takes the Mutex (not
 * the MutexLock) so the REQUIRES annotation names the capability the
 * caller already holds. Always re-check the predicate in a while
 * loop around wait():
 *
 *   MutexLock lock(mu_);
 *   while (count_ != 0) {
 *       cv_.wait(mu_);
 *   }
 */
class CondVar {
  public:
    CondVar() = default;
    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    /** Atomically release @p mu, sleep, and re-acquire before
     *  returning. Spurious wakeups possible — loop on the predicate. */
    void wait(Mutex& mu) PCCHECK_REQUIRES(mu) { cv_.wait(mu); }

    /**
     * Timed wait (real time): returns false on timeout, true when
     * notified. Spurious wakeups possible either way — loop on the
     * predicate AND a deadline, never on this return value alone.
     */
    bool wait_for(Mutex& mu, double seconds) PCCHECK_REQUIRES(mu)
    {
        return cv_.wait_for(mu, std::chrono::duration<double>(seconds)) ==
               std::cv_status::no_timeout;
    }

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

  private:
    std::condition_variable_any cv_;
};

}  // namespace pccheck

#endif  // PCCHECK_UTIL_ANNOTATIONS_H_
