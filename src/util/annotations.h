#ifndef PCCHECK_UTIL_ANNOTATIONS_H_
#define PCCHECK_UTIL_ANNOTATIONS_H_

/**
 * @file
 * Clang Thread Safety Analysis annotations and the annotated locking
 * primitives every PCcheck component must use.
 *
 * The commit protocol's invariants (persist-before-publish, "one
 * durable checkpoint always exists", slot recycling only after the
 * newer pointer record is durable) are easy to violate silently —
 * checkpointing bugs surface as corrupt recovery state, not crashes.
 * This header turns the lock-discipline half of those invariants into
 * compile-time checks: build with a Clang toolchain and
 * -DPCCHECK_THREAD_SAFETY=ON and every access to a PCCHECK_GUARDED_BY
 * member outside its mutex is a hard error (-Werror=thread-safety-
 * analysis). Under GCC the macros expand to nothing and the wrappers
 * cost exactly one std::mutex / std::condition_variable_any.
 *
 * Under -DPCCHECK_MC (the model-checking configuration, see
 * docs/MODEL_CHECKING.md) Mutex/MutexLock/CondVar alias the
 * cooperative implementations from src/mc/shim.h instead, so every
 * locking site in the modeled code becomes a scheduler-visible
 * operation without any source change. The attribute macros
 * themselves live in util/tsa.h so the shim can use them too.
 *
 * Conventions (enforced by tools/pccheck_lint.py, see
 * docs/STATIC_ANALYSIS.md):
 *  - never use std::mutex / std::lock_guard / std::condition_variable
 *    directly outside this header — use Mutex / MutexLock / CondVar;
 *  - annotate every mutex-protected member with PCCHECK_GUARDED_BY;
 *  - functions that expect the caller to hold a lock take
 *    PCCHECK_REQUIRES(mu) (name them *_locked);
 *  - condition-variable waits re-check their predicate in a while
 *    loop directly in the annotated function body (no predicate
 *    lambdas — the analysis cannot see a lambda's lock context).
 */

#include "util/tsa.h"

#if defined(PCCHECK_MC)

#include "mc/shim.h"

namespace pccheck {

// Model-checking build: every Mutex in the modeled code routes its
// lock/unlock/wait through the cooperative mc::Scheduler so thread
// interleavings around critical sections are explored, not sampled.
using Mutex = mc::Mutex;
using MutexLock = mc::MutexLock;
using CondVar = mc::CondVar;

}  // namespace pccheck

#else  // !PCCHECK_MC

#include <chrono>
#include <condition_variable>
#include <mutex>

namespace pccheck {

/**
 * Capability-annotated mutex. A thin shim over std::mutex (same
 * layout, same cost) that the analysis can track. Also a
 * BasicLockable, so CondVar can unlock/relock it while waiting.
 */
class PCCHECK_CAPABILITY("mutex") Mutex {
  public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() PCCHECK_ACQUIRE() { mu_.lock(); }
    void unlock() PCCHECK_RELEASE() { mu_.unlock(); }
    bool try_lock() PCCHECK_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  private:
    std::mutex mu_;
};

/**
 * RAII lock over Mutex (the annotated std::lock_guard). Scope blocks
 * delimit the critical section:
 *
 *   {
 *       MutexLock lock(mu_);
 *       guarded_member_ = ...;   // OK: analysis sees mu_ held
 *   }
 */
class PCCHECK_SCOPED_CAPABILITY MutexLock {
  public:
    explicit MutexLock(Mutex& mu) PCCHECK_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }
    ~MutexLock() PCCHECK_RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

  private:
    Mutex& mu_;
};

/**
 * Condition variable paired with Mutex. wait() takes the Mutex (not
 * the MutexLock) so the REQUIRES annotation names the capability the
 * caller already holds. Always re-check the predicate in a while
 * loop around wait():
 *
 *   MutexLock lock(mu_);
 *   while (count_ != 0) {
 *       cv_.wait(mu_);
 *   }
 */
class CondVar {
  public:
    CondVar() = default;
    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    /** Atomically release @p mu, sleep, and re-acquire before
     *  returning. Spurious wakeups possible — loop on the predicate. */
    void wait(Mutex& mu) PCCHECK_REQUIRES(mu) { cv_.wait(mu); }

    /**
     * Timed wait (real time): returns false on timeout, true when
     * notified. Spurious wakeups possible either way — loop on the
     * predicate AND a deadline, never on this return value alone.
     */
    bool wait_for(Mutex& mu, double seconds) PCCHECK_REQUIRES(mu)
    {
        return cv_.wait_for(mu, std::chrono::duration<double>(seconds)) ==
               std::cv_status::no_timeout;
    }

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

  private:
    std::condition_variable_any cv_;
};

}  // namespace pccheck

#endif  // PCCHECK_MC

#endif  // PCCHECK_UTIL_ANNOTATIONS_H_
