#ifndef PCCHECK_UTIL_CSV_H_
#define PCCHECK_UTIL_CSV_H_

/**
 * @file
 * Minimal CSV writer used by the benchmark harness to emit the per-
 * figure result files referenced in EXPERIMENTS.md. Values are written
 * row by row; strings containing separators or quotes are escaped per
 * RFC 4180.
 */

#include <fstream>
#include <string>
#include <vector>

namespace pccheck {

/** Appends rows to a CSV file, writing the header once on creation. */
class CsvWriter {
  public:
    /**
     * Open (truncate) @p path and write @p header.
     * Throws FatalError if the file cannot be opened.
     */
    CsvWriter(const std::string& path, const std::vector<std::string>& header);

    /** Write one row; must have the same arity as the header. */
    void row(const std::vector<std::string>& values);

    /** Convenience: stringify a mixed row of doubles. */
    void row_numeric(const std::string& label,
                     const std::vector<double>& values);

    const std::string& path() const { return path_; }

  private:
    void write_line(const std::vector<std::string>& values);

    std::string path_;
    std::ofstream out_;
    std::size_t arity_;
};

/** Escape one CSV field per RFC 4180. */
std::string csv_escape(const std::string& field);

}  // namespace pccheck

#endif  // PCCHECK_UTIL_CSV_H_
