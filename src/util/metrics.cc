#include "util/metrics.h"

#include <algorithm>

namespace pccheck {

LatencyHistogram::LatencyHistogram(double lo, double hi,
                                   std::size_t buckets)
    : hist_(lo, hi, buckets)
{
}

void
LatencyHistogram::observe(double seconds)
{
    MutexLock lock(mu_);
    hist_.add(seconds);
}

std::size_t
LatencyHistogram::count() const
{
    MutexLock lock(mu_);
    return hist_.count();
}

HistogramSummary
LatencyHistogram::summary() const
{
    MutexLock lock(mu_);
    return hist_.summary();
}

MetricsRegistry&
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

Counter&
MetricsRegistry::counter(const std::string& name)
{
    MutexLock lock(mu_);
    auto& slot = counters_[name];
    if (!slot) {
        slot = std::make_unique<Counter>();
    }
    return *slot;
}

Gauge&
MetricsRegistry::gauge(const std::string& name)
{
    MutexLock lock(mu_);
    auto& slot = gauges_[name];
    if (!slot) {
        slot = std::make_unique<Gauge>();
    }
    return *slot;
}

LatencyHistogram&
MetricsRegistry::histogram(const std::string& name)
{
    MutexLock lock(mu_);
    auto& slot = histograms_[name];
    if (!slot) {
        slot = std::make_unique<LatencyHistogram>();
    }
    return *slot;
}

std::vector<std::pair<std::string, double>>
MetricsRegistry::snapshot() const
{
    MutexLock lock(mu_);
    std::vector<std::pair<std::string, double>> out;
    out.reserve(counters_.size() + gauges_.size());
    for (const auto& [name, counter] : counters_) {
        out.emplace_back(name, static_cast<double>(counter->value()));
    }
    for (const auto& [name, gauge] : gauges_) {
        out.emplace_back(name, gauge->value());
    }
    for (const auto& [name, hist] : histograms_) {
        const HistogramSummary s = hist->summary();
        out.emplace_back(name + ".count",
                         static_cast<double>(s.count));
        out.emplace_back(name + ".p50", s.p50);
        out.emplace_back(name + ".p95", s.p95);
        out.emplace_back(name + ".p99", s.p99);
    }
    std::sort(out.begin(), out.end());
    return out;
}

void
MetricsRegistry::dump(std::ostream& out) const
{
    for (const auto& [name, value] : snapshot()) {
        out << name << " = " << value << '\n';
    }
}

void
MetricsRegistry::reset()
{
    MutexLock lock(mu_);
    for (auto& [name, counter] : counters_) {
        (void)name;
        counter = std::make_unique<Counter>();
    }
    for (auto& [name, gauge] : gauges_) {
        (void)name;
        gauge = std::make_unique<Gauge>();
    }
    for (auto& [name, hist] : histograms_) {
        (void)name;
        hist = std::make_unique<LatencyHistogram>();
    }
}

}  // namespace pccheck
