#include "util/metrics.h"

namespace pccheck {

MetricsRegistry&
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

Counter&
MetricsRegistry::counter(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = counters_[name];
    if (!slot) {
        slot = std::make_unique<Counter>();
    }
    return *slot;
}

Gauge&
MetricsRegistry::gauge(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = gauges_[name];
    if (!slot) {
        slot = std::make_unique<Gauge>();
    }
    return *slot;
}

std::vector<std::pair<std::string, double>>
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::pair<std::string, double>> out;
    out.reserve(counters_.size() + gauges_.size());
    for (const auto& [name, counter] : counters_) {
        out.emplace_back(name, static_cast<double>(counter->value()));
    }
    for (const auto& [name, gauge] : gauges_) {
        out.emplace_back(name, gauge->value());
    }
    return out;
}

void
MetricsRegistry::dump(std::ostream& out) const
{
    for (const auto& [name, value] : snapshot()) {
        out << name << " = " << value << '\n';
    }
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, counter] : counters_) {
        (void)name;
        counter = std::make_unique<Counter>();
    }
    for (auto& [name, gauge] : gauges_) {
        (void)name;
        gauge = std::make_unique<Gauge>();
    }
}

}  // namespace pccheck
