#include "util/throttle.h"

#include <algorithm>

#include "util/check.h"

namespace pccheck {

BandwidthThrottle::BandwidthThrottle(double bytes_per_sec, const Clock& clock)
    : clock_(clock), bytes_per_sec_(bytes_per_sec)
{
    PCCHECK_CHECK(bytes_per_sec >= 0.0);
}

Seconds
BandwidthThrottle::acquire(Bytes n)
{
    if (n == 0) {
        return 0.0;
    }
    const Seconds arrival = clock_.now();
    Seconds wake;
    {
        // The bandwidth is read under the same lock that guards it:
        // set_bytes_per_sec() may run concurrently (tuner adjustments).
        MutexLock lock(mu_);
        if (bytes_per_sec_ <= 0.0) {
            return 0.0;
        }
        const Seconds duration = static_cast<double>(n) / bytes_per_sec_;
        const Seconds start = std::max(arrival, cursor_);
        cursor_ = start + duration;
        wake = cursor_;
    }
    const Seconds now = clock_.now();
    if (wake > now) {
        clock_.sleep_for(wake - now);
    }
    return wake - arrival;
}

double
BandwidthThrottle::bytes_per_sec() const
{
    MutexLock lock(mu_);
    return bytes_per_sec_;
}

void
BandwidthThrottle::set_bytes_per_sec(double bytes_per_sec)
{
    PCCHECK_CHECK(bytes_per_sec >= 0.0);
    MutexLock lock(mu_);
    bytes_per_sec_ = bytes_per_sec;
}

}  // namespace pccheck
