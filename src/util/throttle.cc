#include "util/throttle.h"

#include <algorithm>

#include "util/check.h"

namespace pccheck {

BandwidthThrottle::BandwidthThrottle(double bytes_per_sec, const Clock& clock)
    : clock_(clock), bytes_per_sec_(bytes_per_sec)
{
    PCCHECK_CHECK(bytes_per_sec >= 0.0);
}

Seconds
BandwidthThrottle::acquire(Bytes n)
{
    if (bytes_per_sec_ <= 0.0 || n == 0) {
        return 0.0;
    }
    const Seconds arrival = clock_.now();
    Seconds wake;
    {
        std::lock_guard<std::mutex> lock(mu_);
        const Seconds duration = static_cast<double>(n) / bytes_per_sec_;
        const Seconds start = std::max(arrival, cursor_);
        cursor_ = start + duration;
        wake = cursor_;
    }
    const Seconds now = clock_.now();
    if (wake > now) {
        clock_.sleep_for(wake - now);
    }
    return wake - arrival;
}

void
BandwidthThrottle::set_bytes_per_sec(double bytes_per_sec)
{
    PCCHECK_CHECK(bytes_per_sec >= 0.0);
    std::lock_guard<std::mutex> lock(mu_);
    bytes_per_sec_ = bytes_per_sec;
}

}  // namespace pccheck
