#ifndef PCCHECK_UTIL_LOGGING_H_
#define PCCHECK_UTIL_LOGGING_H_

/**
 * @file
 * Leveled logging to stderr. Thread safe (each message is emitted with
 * one formatted write). The level is process-global and defaults to
 * kInfo; benchmarks lower it to kWarn to keep output clean.
 */

#include <sstream>
#include <string>

namespace pccheck {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/** Set the process-global minimum level that gets emitted. */
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {

void log_emit(LogLevel level, const std::string& msg);

}  // namespace detail
}  // namespace pccheck

#define PCCHECK_LOG(level, stream_expr)                                      \
    do {                                                                     \
        if (static_cast<int>(level) >=                                       \
            static_cast<int>(::pccheck::log_level())) {                      \
            std::ostringstream pccheck_log_oss_;                             \
            pccheck_log_oss_ << stream_expr;                                 \
            ::pccheck::detail::log_emit(level, pccheck_log_oss_.str());      \
        }                                                                    \
    } while (0)

#define LOG_DEBUG(expr) PCCHECK_LOG(::pccheck::LogLevel::kDebug, expr)
#define LOG_INFO(expr) PCCHECK_LOG(::pccheck::LogLevel::kInfo, expr)
#define LOG_WARN(expr) PCCHECK_LOG(::pccheck::LogLevel::kWarn, expr)
#define LOG_ERROR(expr) PCCHECK_LOG(::pccheck::LogLevel::kError, expr)

#endif  // PCCHECK_UTIL_LOGGING_H_
