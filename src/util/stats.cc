#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"

namespace pccheck {

void
RunningStat::add(double x)
{
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStat::variance() const
{
    if (count_ < 2) {
        return 0.0;
    }
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStat::merge(const RunningStat& other)
{
    if (other.count_ == 0) {
        return;
    }
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = n1 + n2;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    mean_ = (n1 * mean_ + n2 * other.mean_) / n;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      buckets_(buckets, 0)
{
    PCCHECK_CHECK(hi > lo);
    PCCHECK_CHECK(buckets > 0);
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
    } else if (x >= hi_) {
        ++overflow_;
    } else {
        auto idx = static_cast<std::size_t>((x - lo_) / width_);
        idx = std::min(idx, buckets_.size() - 1);
        ++buckets_[idx];
    }
}

double
Histogram::quantile(double q) const
{
    PCCHECK_CHECK(q >= 0.0 && q <= 1.0);
    if (total_ == 0) {
        return lo_;
    }
    const double target = q * static_cast<double>(total_);
    double cumulative = static_cast<double>(underflow_);
    if (cumulative >= target && underflow_ > 0) {
        return lo_;
    }
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        const double in_bucket = static_cast<double>(buckets_[i]);
        if (cumulative + in_bucket >= target && in_bucket > 0) {
            const double frac = (target - cumulative) / in_bucket;
            return lo_ + width_ * (static_cast<double>(i) + frac);
        }
        cumulative += in_bucket;
    }
    return hi_;
}

HistogramSummary
Histogram::summary() const
{
    HistogramSummary s;
    s.count = total_;
    s.p50 = quantile(0.5);
    s.p95 = quantile(0.95);
    s.p99 = quantile(0.99);
    return s;
}

void
Histogram::merge(const Histogram& other)
{
    PCCHECK_CHECK(other.lo_ == lo_ && other.hi_ == hi_ &&
                  other.buckets_.size() == buckets_.size());
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        buckets_[i] += other.buckets_[i];
    }
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
    total_ += other.total_;
}

std::string
Histogram::to_string() const
{
    std::ostringstream oss;
    oss << "histogram n=" << total_ << " p50=" << quantile(0.5)
        << " p90=" << quantile(0.9) << " p99=" << quantile(0.99);
    return oss.str();
}

}  // namespace pccheck
