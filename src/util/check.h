#ifndef PCCHECK_UTIL_CHECK_H_
#define PCCHECK_UTIL_CHECK_H_

/**
 * @file
 * Assertion and fatal-error helpers.
 *
 * Two severities, following the panic/fatal split used by systems
 * simulators:
 *  - PCCHECK_CHECK: internal invariant; a failure is a library bug.
 *    Aborts via std::terminate after printing.
 *  - pccheck::fatal(): user/environment error (bad configuration,
 *    unusable file, ...). Throws pccheck::FatalError so callers and
 *    tests can observe it.
 */

#include <sstream>
#include <stdexcept>
#include <string>

namespace pccheck {

/** Error thrown for unrecoverable user/environment problems. */
class FatalError : public std::runtime_error {
  public:
    explicit FatalError(const std::string& what) : std::runtime_error(what) {}
};

/** Throw a FatalError with the given message. */
[[noreturn]] void fatal(const std::string& msg);

namespace detail {

/** Print an invariant-violation message and terminate. */
[[noreturn]] void check_failed(const char* file, int line, const char* expr,
                               const std::string& msg);

}  // namespace detail

}  // namespace pccheck

/** Abort-on-failure invariant check (always on, even in release). */
#define PCCHECK_CHECK(expr)                                                  \
    do {                                                                     \
        if (!(expr)) {                                                       \
            ::pccheck::detail::check_failed(__FILE__, __LINE__, #expr, "");  \
        }                                                                    \
    } while (0)

/** Invariant check with a streamed message: PCCHECK_CHECK_MSG(x>0, "x=" << x) */
#define PCCHECK_CHECK_MSG(expr, stream_expr)                                 \
    do {                                                                     \
        if (!(expr)) {                                                       \
            std::ostringstream pccheck_oss_;                                 \
            pccheck_oss_ << stream_expr;                                     \
            ::pccheck::detail::check_failed(__FILE__, __LINE__, #expr,       \
                                            pccheck_oss_.str());             \
        }                                                                    \
    } while (0)

/**
 * Consume a [[nodiscard]] status that cannot fail in this context
 * (e.g. MemStorage writes in tests, setup paths where a failure is a
 * harness bug). Aborts if the status is not ok() — never use it on the
 * checkpoint hot path, where errors must flow to the retry/abort
 * machinery instead.
 */
#define PCCHECK_MUST(status_expr)                                            \
    do {                                                                     \
        auto pccheck_status_ = (status_expr);                                \
        PCCHECK_CHECK_MSG(pccheck_status_.ok(),                              \
                          "must-succeed op failed: "                         \
                              << pccheck_status_.context());                 \
    } while (0)

#endif  // PCCHECK_UTIL_CHECK_H_
