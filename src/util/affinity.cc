#include "util/affinity.h"

#include <pthread.h>
#include <sched.h>
#include <unistd.h>

namespace pccheck {

int
available_cpus()
{
    const long count = ::sysconf(_SC_NPROCESSORS_ONLN);
    return count > 0 ? static_cast<int>(count) : 1;
}

bool
pin_current_thread(int cpu)
{
    const int cpus = available_cpus();
    if (cpus <= 0 || cpu < 0) {
        return false;
    }
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(static_cast<unsigned>(cpu % cpus), &set);
    return ::pthread_setaffinity_np(pthread_self(), sizeof(set), &set) ==
           0;
}

bool
unpin_current_thread()
{
    const int cpus = available_cpus();
    cpu_set_t set;
    CPU_ZERO(&set);
    for (int cpu = 0; cpu < cpus; ++cpu) {
        CPU_SET(static_cast<unsigned>(cpu), &set);
    }
    return ::pthread_setaffinity_np(pthread_self(), sizeof(set), &set) ==
           0;
}

}  // namespace pccheck
