#include "util/crc32.h"

#include <array>

namespace pccheck {
namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected CRC-32C

std::array<std::uint32_t, 256>
make_table()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t crc = i;
        for (int bit = 0; bit < 8; ++bit) {
            crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
        }
        table[i] = crc;
    }
    return table;
}

}  // namespace

std::uint32_t
crc32c(const void* data, std::size_t len, std::uint32_t seed)
{
    static const auto kTable = make_table();
    const auto* bytes = static_cast<const std::uint8_t*>(data);
    std::uint32_t crc = ~seed;
    for (std::size_t i = 0; i < len; ++i) {
        crc = (crc >> 8) ^ kTable[(crc ^ bytes[i]) & 0xFF];
    }
    return ~crc;
}

}  // namespace pccheck
