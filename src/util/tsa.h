#ifndef PCCHECK_UTIL_TSA_H_
#define PCCHECK_UTIL_TSA_H_

/**
 * @file
 * Clang Thread Safety Analysis attribute macros.
 *
 * Split out of util/annotations.h so the model-checker shim
 * (src/mc/shim.h) can annotate its cooperative Mutex/MutexLock with
 * the same capability attributes without an include cycle:
 * annotations.h aliases the locking primitives to the shim under
 * PCCHECK_MC, and the shim needs these macros to define them.
 *
 * Under non-Clang compilers every macro expands to nothing.
 */

#if defined(__clang__)
#define PCCHECK_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PCCHECK_THREAD_ANNOTATION(x)  // no-op: GCC has no TSA
#endif

/** Marks a type as a lockable capability ("mutex"). */
#define PCCHECK_CAPABILITY(x) PCCHECK_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type that acquires on construction, releases on
 *  destruction. */
#define PCCHECK_SCOPED_CAPABILITY PCCHECK_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only while holding @p x. */
#define PCCHECK_GUARDED_BY(x) PCCHECK_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose pointee is protected by @p x. */
#define PCCHECK_PT_GUARDED_BY(x) PCCHECK_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function that must be called with the capability held. */
#define PCCHECK_REQUIRES(...) \
    PCCHECK_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function that acquires the capability (held on return). */
#define PCCHECK_ACQUIRE(...) \
    PCCHECK_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function that conditionally acquires; first arg is the success
 *  return value. */
#define PCCHECK_TRY_ACQUIRE(...) \
    PCCHECK_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Function that releases the capability. */
#define PCCHECK_RELEASE(...) \
    PCCHECK_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function that must be called WITHOUT the capability held
 *  (deadlock prevention, e.g. callbacks that re-enter). */
#define PCCHECK_EXCLUDES(...) \
    PCCHECK_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Runtime assertion that the capability is held (trusted). */
#define PCCHECK_ASSERT_CAPABILITY(x) \
    PCCHECK_THREAD_ANNOTATION(assert_capability(x))

/** Accessor returning a reference to the capability. */
#define PCCHECK_RETURN_CAPABILITY(x) \
    PCCHECK_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch; every use needs a justification comment. */
#define PCCHECK_NO_THREAD_SAFETY_ANALYSIS \
    PCCHECK_THREAD_ANNOTATION(no_thread_safety_analysis)

/**
 * Marks a function as checkpoint-hot-path: it runs once per persisted
 * stripe / queue operation / delta frame, so steady-state heap
 * allocation, growable-container mutation, throwing constructs, and
 * per-call MetricsRegistry name lookups are forbidden in it (cache
 * registry handles in function-local statics instead — see
 * PersistEngine::write_stripe for the idiom). Enforced by
 * tools/pccheck_tidy (hot-path-alloc check, docs/STATIC_ANALYSIS.md);
 * exceptions need a `// pccheck-tidy: disable=hot-path-alloc -- why`
 * suppression with a justification. Under Clang the annotate attribute
 * also makes the marker visible to AST tooling; the macro token itself
 * is what pccheck_tidy keys on, so GCC builds lose nothing.
 */
#if defined(__clang__)
#define PCCHECK_HOT_PATH __attribute__((annotate("pccheck::hot_path")))
#else
#define PCCHECK_HOT_PATH  // no-op outside Clang; the token still marks
#endif

#endif  // PCCHECK_UTIL_TSA_H_
