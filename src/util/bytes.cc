#include "util/bytes.h"

#include <array>
#include <cstdio>

namespace pccheck {

std::string
format_bytes(Bytes n)
{
    static constexpr std::array<const char*, 5> kUnits = {"B", "KiB", "MiB",
                                                          "GiB", "TiB"};
    double value = static_cast<double>(n);
    std::size_t unit = 0;
    while (value >= 1024.0 && unit + 1 < kUnits.size()) {
        value /= 1024.0;
        ++unit;
    }
    char buf[32];
    if (unit == 0) {
        std::snprintf(buf, sizeof(buf), "%llu B",
                      static_cast<unsigned long long>(n));
    } else {
        std::snprintf(buf, sizeof(buf), "%.2f %s", value, kUnits[unit]);
    }
    return buf;
}

}  // namespace pccheck
