#ifndef PCCHECK_UTIL_STATS_H_
#define PCCHECK_UTIL_STATS_H_

/**
 * @file
 * Lightweight statistics accumulators used by the benchmark harness:
 * a running mean/stddev (Welford) and a fixed-resolution histogram for
 * latency distributions.
 */

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace pccheck {

/** Online mean / variance / min / max accumulator (Welford). */
class RunningStat {
  public:
    /** Add one sample. */
    void add(double x);

    std::size_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    /** Sample variance (n-1 denominator); 0 for fewer than 2 samples. */
    double variance() const;
    double stddev() const;
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double sum() const { return sum_; }

    /** Merge another accumulator into this one. */
    void merge(const RunningStat& other);

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Tail-latency digest of a Histogram (see Histogram::summary). */
struct HistogramSummary {
    std::size_t count = 0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

/**
 * Histogram with uniform bucket width over [lo, hi); out-of-range
 * samples land in saturating under/overflow buckets. Quantiles are
 * estimated by linear interpolation within the containing bucket.
 */
class Histogram {
  public:
    /**
     * @param lo inclusive lower bound of the tracked range
     * @param hi exclusive upper bound of the tracked range (> lo)
     * @param buckets number of uniform buckets (> 0)
     */
    Histogram(double lo, double hi, std::size_t buckets);

    void add(double x);
    std::size_t count() const { return total_; }

    /** Estimated q-quantile, q in [0, 1]. Returns lo/hi at the edges. */
    double quantile(double q) const;

    /** Count / p50 / p95 / p99 in one pass (metrics dumps). */
    HistogramSummary summary() const;

    /** Merge another histogram with identical geometry into this one. */
    void merge(const Histogram& other);

    /** Multi-line textual rendering for logs. */
    std::string to_string() const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::size_t> buckets_;
    std::size_t underflow_ = 0;
    std::size_t overflow_ = 0;
    std::size_t total_ = 0;
};

}  // namespace pccheck

#endif  // PCCHECK_UTIL_STATS_H_
