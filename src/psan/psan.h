#ifndef PCCHECK_PSAN_PSAN_H_
#define PCCHECK_PSAN_PSAN_H_

/**
 * @file
 * pccheck-psan: the persistence sanitizer runtime (docs/PSAN.md).
 *
 * In the spirit of ASan/TSan, but for the durability lifecycle: every
 * storage line is shadowed by a state machine
 *
 *   Clean → Dirty → FlushPending → Durable
 *
 * (see PsanStorage in psan_storage.h) and the commit/seal/publish
 * sites report their ordering-sensitive steps through lightweight
 * hooks. Contract violations are reported here, with provenance:
 * the originating scope label, the device op index, and the line
 * ranges involved.
 *
 * Rules (docs/PSAN.md):
 *   V1 ack-before-payload  a publish/seal/watermark advance names data
 *                          whose payload lines are not yet Durable
 *   V2 missing-fence       a publish/seal record completed without the
 *                          persist+fence that makes it durable
 *   V3 lost-update         a write overlaps lines protecting the
 *                          newest durable checkpoint (live slot or a
 *                          sealed delta frame of the current epoch)
 *   V4 redundant-flush     persist/fence work on lines with nothing to
 *                          flush (perf waste — summary table, never a
 *                          failure)
 *   V5 nondurable-read     recovery reads a line never made Durable
 *
 * Violations abort with a deterministic report by default; tests
 * switch the runtime to collect mode and assert on the records.
 */

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/annotations.h"
#include "util/bytes.h"

namespace pccheck {
namespace psan {

/** Durability-contract rules (docs/PSAN.md). V4 is advisory only. */
enum class Rule : std::uint8_t {
    kV1AckBeforePayload,
    kV2MissingFence,
    kV3LostUpdate,
    kV4RedundantFlush,  ///< never reported as a violation; stats only
    kV5NondurableRead,
};

/** Stable short code ("V1".."V5") for reports and test assertions. */
const char* rule_code(Rule rule);

/** One detected durability-contract violation, with provenance. */
struct Violation {
    Rule rule = Rule::kV1AckBeforePayload;
    /** Innermost scope label at the faulting op ("" when unlabeled). */
    std::string label;
    /** Device op index (per-device monotonic write/persist/fence count). */
    std::uint64_t op_index = 0;
    Bytes offset = 0;  ///< first byte of the offending range
    Bytes len = 0;     ///< length of the offending range
    std::string message;

    /** Deterministic one-line report (no pointers, no timestamps). */
    std::string to_string() const;
};

/** Per-label V4 redundancy aggregate (the report's summary table). */
struct RedundancyStats {
    std::uint64_t persist_ops = 0;
    /** Persist calls covering no Dirty line at all. */
    std::uint64_t redundant_persist_ops = 0;
    /** Lines covered by a persist that had nothing to flush. */
    std::uint64_t redundant_persist_lines = 0;
    std::uint64_t fence_ops = 0;
    /** Fences issued with no FlushPending line anywhere (PMEM only). */
    std::uint64_t redundant_fences = 0;
};

/**
 * Process-wide sanitizer runtime: violation sink + V4 aggregation.
 * Thread-safe. A single instance serves every PsanStorage in the
 * process so sweep harnesses can assert "psan-clean" in one place.
 */
class Runtime {
  public:
    enum class Trap {
        kAbort,    ///< print the deterministic report and abort()
        kCollect,  ///< store the violation for test inspection
    };

    static Runtime& global();

    void set_trap(Trap trap);
    Trap trap() const;

    /** Report a violation; aborts in kAbort mode (V4 never arrives). */
    void report(const Violation& violation);

    /** Total violations reported since process start (V4 excluded). */
    std::uint64_t violation_count() const;
    /** Violations of one rule since process start. */
    std::uint64_t rule_count(Rule rule) const;
    /** Drain the collected violations (kCollect mode). */
    std::vector<Violation> take_violations();

    /** V4 bookkeeping, called by PsanStorage on persist/fence ops. */
    void note_persist(const std::string& label, bool redundant_op,
                      std::uint64_t redundant_lines);
    void note_fence(const std::string& label, bool redundant);

    /** Per-label V4 table, label-sorted (stable report order). */
    std::vector<std::pair<std::string, RedundancyStats>>
    redundancy_table() const;

    /**
     * One JSON object (single line) with the V4 table — the record
     * tools/psan_report.py merges into bench/baselines/
     * PSAN_redundancy.json. Appended to $PCCHECK_PSAN_REPORT at
     * process exit when that variable names a writable path.
     */
    std::string report_json() const;

  private:
    Runtime() = default;

    mutable Mutex mu_;
    Trap trap_ PCCHECK_GUARDED_BY(mu_) = Trap::kAbort;
    std::uint64_t counts_[5] PCCHECK_GUARDED_BY(mu_) = {0, 0, 0, 0, 0};
    std::vector<Violation> collected_ PCCHECK_GUARDED_BY(mu_);
    std::vector<std::pair<std::string, RedundancyStats>> redundancy_
        PCCHECK_GUARDED_BY(mu_);

    RedundancyStats& stats_for(const std::string& label)
        PCCHECK_REQUIRES(mu_);
};

/**
 * RAII provenance label for violation reports and the V4 table, e.g.
 * "slot_store.publish" or "persist_engine.stripe". Labels nest;
 * reports carry the innermost. Thread-local, so concurrent writers
 * each carry their own provenance.
 */
class ScopeLabel {
  public:
    explicit ScopeLabel(const char* label);
    ~ScopeLabel();

    ScopeLabel(const ScopeLabel&) = delete;
    ScopeLabel& operator=(const ScopeLabel&) = delete;

    /** Innermost active label on this thread ("" when none). */
    static const char* current();
};

/**
 * RAII marker for recovery code: while in scope (on this thread),
 * PsanStorage::read() enforces V5 — every line read must be Durable
 * or Clean (pre-existing media content). Nests.
 */
class RecoveryScope {
  public:
    RecoveryScope();
    ~RecoveryScope();

    RecoveryScope(const RecoveryScope&) = delete;
    RecoveryScope& operator=(const RecoveryScope&) = delete;

    static bool active();
};

/**
 * Whether PCcheckConfig::psan should default to enabled: the
 * PCCHECK_PSAN environment variable ("0"/"1") wins; otherwise the
 * PCCHECK_PSAN CMake option's compile-time default applies.
 */
bool psan_default_enabled();

}  // namespace psan
}  // namespace pccheck

#endif  // PCCHECK_PSAN_PSAN_H_
