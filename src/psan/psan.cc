#include "psan/psan.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace pccheck {
namespace psan {
namespace {

/** Thread-local label stack for ScopeLabel (raw pointers: labels are
 *  string literals with static storage duration). */
thread_local std::vector<const char*> t_labels;

/** Thread-local RecoveryScope nesting depth. */
thread_local int t_recovery_depth = 0;

/** Writes the V4 report line at process exit when requested. */
struct ReportAtExit {
    ~ReportAtExit()
    {
        const char* path = std::getenv("PCCHECK_PSAN_REPORT");
        if (path == nullptr || path[0] == '\0') {
            return;
        }
        // One JSON object per line, append mode: parallel ctest
        // processes share the file and tools/psan_report.py merges
        // the lines.
        std::ofstream out(path, std::ios::app);
        if (out) {
            out << Runtime::global().report_json() << "\n";
        }
    }
};

}  // namespace

const char*
rule_code(Rule rule)
{
    switch (rule) {
      case Rule::kV1AckBeforePayload:
        return "V1";
      case Rule::kV2MissingFence:
        return "V2";
      case Rule::kV3LostUpdate:
        return "V3";
      case Rule::kV4RedundantFlush:
        return "V4";
      case Rule::kV5NondurableRead:
        return "V5";
    }
    return "V?";
}

std::string
Violation::to_string() const
{
    std::ostringstream oss;
    oss << "psan: " << rule_code(rule) << " " << message << " range=["
        << offset << "," << offset + len << ") label="
        << (label.empty() ? "<none>" : label) << " op=" << op_index;
    return oss.str();
}

Runtime&
Runtime::global()
{
    static Runtime runtime;
    static ReportAtExit report_at_exit;
    (void)report_at_exit;
    return runtime;
}

void
Runtime::set_trap(Trap trap)
{
    MutexLock lock(mu_);
    trap_ = trap;
}

Runtime::Trap
Runtime::trap() const
{
    MutexLock lock(mu_);
    return trap_;
}

void
Runtime::report(const Violation& violation)
{
    Trap trap;
    {
        MutexLock lock(mu_);
        ++counts_[static_cast<std::size_t>(violation.rule)];
        trap = trap_;
        if (trap == Trap::kCollect) {
            collected_.push_back(violation);
        }
    }
    if (trap == Trap::kAbort) {
        // Deterministic report: rule code, message, ranges, label, op
        // index — nothing address- or time-dependent.
        std::fprintf(stderr, "%s\n", violation.to_string().c_str());
        std::abort();
    }
}

std::uint64_t
Runtime::violation_count() const
{
    MutexLock lock(mu_);
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < 5; ++i) {
        if (i != static_cast<std::size_t>(Rule::kV4RedundantFlush)) {
            total += counts_[i];
        }
    }
    return total;
}

std::uint64_t
Runtime::rule_count(Rule rule) const
{
    MutexLock lock(mu_);
    return counts_[static_cast<std::size_t>(rule)];
}

std::vector<Violation>
Runtime::take_violations()
{
    MutexLock lock(mu_);
    std::vector<Violation> out;
    out.swap(collected_);
    return out;
}

RedundancyStats&
Runtime::stats_for(const std::string& label)
{
    // Linear scan over a handful of static labels: the table is tiny
    // (one entry per instrumented site) and stays insertion-ordered.
    for (auto& entry : redundancy_) {
        if (entry.first == label) {
            return entry.second;
        }
    }
    redundancy_.emplace_back(label, RedundancyStats{});
    return redundancy_.back().second;
}

void
Runtime::note_persist(const std::string& label, bool redundant_op,
                      std::uint64_t redundant_lines)
{
    MutexLock lock(mu_);
    RedundancyStats& stats = stats_for(label);
    ++stats.persist_ops;
    if (redundant_op) {
        ++stats.redundant_persist_ops;
    }
    stats.redundant_persist_lines += redundant_lines;
}

void
Runtime::note_fence(const std::string& label, bool redundant)
{
    MutexLock lock(mu_);
    RedundancyStats& stats = stats_for(label);
    ++stats.fence_ops;
    if (redundant) {
        ++stats.redundant_fences;
    }
}

std::vector<std::pair<std::string, RedundancyStats>>
Runtime::redundancy_table() const
{
    std::vector<std::pair<std::string, RedundancyStats>> table;
    {
        MutexLock lock(mu_);
        table = redundancy_;
    }
    std::sort(table.begin(), table.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return table;
}

std::string
Runtime::report_json() const
{
    std::ostringstream oss;
    oss << "{\"psan_redundancy\":{";
    bool first = true;
    for (const auto& [label, stats] : redundancy_table()) {
        if (!first) {
            oss << ",";
        }
        first = false;
        oss << "\"" << (label.empty() ? "<none>" : label) << "\":{"
            << "\"persist_ops\":" << stats.persist_ops
            << ",\"redundant_persist_ops\":" << stats.redundant_persist_ops
            << ",\"redundant_persist_lines\":"
            << stats.redundant_persist_lines
            << ",\"fence_ops\":" << stats.fence_ops
            << ",\"redundant_fences\":" << stats.redundant_fences << "}";
    }
    oss << "}}";
    return oss.str();
}

ScopeLabel::ScopeLabel(const char* label)
{
    t_labels.push_back(label);
}

ScopeLabel::~ScopeLabel()
{
    t_labels.pop_back();
}

const char*
ScopeLabel::current()
{
    return t_labels.empty() ? "" : t_labels.back();
}

RecoveryScope::RecoveryScope()
{
    ++t_recovery_depth;
}

RecoveryScope::~RecoveryScope()
{
    --t_recovery_depth;
}

bool
RecoveryScope::active()
{
    return t_recovery_depth > 0;
}

bool
psan_default_enabled()
{
    const char* env = std::getenv("PCCHECK_PSAN");
    if (env != nullptr && env[0] != '\0') {
        return env[0] == '1' || env[0] == 'y' || env[0] == 'Y' ||
               env[0] == 't' || env[0] == 'T';
    }
#if defined(PCCHECK_PSAN_DEFAULT_ON)
    return true;
#else
    return false;
#endif
}

}  // namespace psan
}  // namespace pccheck
