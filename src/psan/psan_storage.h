#ifndef PCCHECK_PSAN_PSAN_STORAGE_H_
#define PCCHECK_PSAN_PSAN_STORAGE_H_

/**
 * @file
 * PsanStorage: the persistence-sanitizer StorageDevice decorator.
 *
 * Shadows every storage line of the wrapped device with the
 * durability state machine
 *
 *   Clean → (write) → Dirty → (persist) → FlushPending → (fence) →
 *   Durable
 *
 * at the device's persistence granularity (64 B cache lines for the
 * PMEM kinds, 4 KiB pages for SSD — the same model CrashSimStorage
 * uses). On SSD/DRAM kinds persist() commits directly (Dirty →
 * Durable); a write re-dirties in any state. The shadow is a
 * coalesced-run interval map keyed by line, so per-op cost is
 * O(log runs + runs touched) — amortized O(1) for the protocol's
 * sequential range traffic.
 *
 * The commit/seal/publish sites (SlotStore, DeltaLog,
 * ConcurrentCommit, ReplicationEngine's watermark) report their
 * ordering-sensitive steps through the on_*() hooks below; the
 * decorator checks rules V1–V5 (see psan.h / docs/PSAN.md) and
 * reports violations to psan::Runtime with provenance.
 *
 * The orchestrator interposes this decorator automatically when
 * PCcheckConfig::psan is set (default: the PCCHECK_PSAN CMake option /
 * environment variable), so every existing test, sweep, and bench
 * runs under the sanitizer unchanged.
 *
 * Known limitation: CrashSimStorage::crash() mutates the device
 * beneath the wrapper, staling the shadow. The crash harnesses use
 * the non-mutating crash_image() capture, which is invisible to the
 * device interface and therefore safe; call on_format() after any
 * mutating reset.
 */

#include <functional>
#include <map>
#include <memory>

#include "psan/psan.h"
#include "storage/device.h"
#include "util/annotations.h"

namespace pccheck {

/** Sanitizing decorator around any StorageDevice. */
class PsanStorage final : public StorageDevice {
  public:
    /** Wrap @p inner without owning it (orchestrator interposition). */
    explicit PsanStorage(StorageDevice& inner);

    /** Wrap and own @p inner (decorator stacking in tests/tools). */
    explicit PsanStorage(std::unique_ptr<StorageDevice> inner);

    Bytes size() const override { return inner_->size(); }
    StorageStatus write(Bytes offset, const void* src, Bytes len) override;
    StorageStatus read(Bytes offset, void* dst, Bytes len) const override;
    StorageStatus persist(Bytes offset, Bytes len) override;
    StorageStatus fence() override;
    StorageKind kind() const override { return inner_->kind(); }
    void set_observe_hook(
        std::function<void(const StorageOp&)> hook) override
    {
        inner_->set_observe_hook(std::move(hook));
    }

    StorageDevice& inner() { return *inner_; }

    /** Persistence line granularity the shadow tracks. */
    Bytes line_size() const { return line_size_; }

    // ---- protocol hooks (commit/seal/publish sites) ----

    /**
     * A pointer-record publish for checkpoint @p counter is about to
     * be written; its reachable payload is [payload_off,
     * payload_off+payload_len). V1: every payload line must already
     * be Durable (or Clean — untouched pre-existing media content).
     */
    void on_publish_begin(std::uint64_t counter, Bytes payload_off,
                          Bytes payload_len);

    /**
     * The record write+persist+fence for @p counter reported success.
     * V2: the record lines themselves must now be Durable. On
     * success, V3 protection moves to this checkpoint's payload.
     */
    void on_publish_durable(std::uint64_t counter, Bytes record_off,
                            Bytes record_len, Bytes payload_off,
                            Bytes payload_len);

    /**
     * A delta-frame header seal is about to be written over the
     * pre-seal range [frame_off, frame_off+preseal_len) (payload +
     * dead headers). V1: no line of it may still be Dirty or
     * FlushPending.
     */
    void on_seal_begin(Bytes frame_off, Bytes preseal_len);

    /**
     * The frame header at @p frame_off sealed durably; the frame
     * occupies [frame_off, frame_off+frame_len). V2 on the header
     * line; on success the frame joins the V3-protected set until
     * the next epoch reset.
     */
    void on_seal_durable(Bytes frame_off, Bytes frame_len);

    /** Delta-log GC: sealed frames are no longer reachable. */
    void on_epoch_reset();

    /**
     * The scrubber is about to kill the sealed frame at @p frame_off
     * (dead-header truncation of a rotten chain tail). Lifts V3
     * protection for that frame and every later one — nothing at or
     * past a dead header is reachable to replay.
     */
    void on_delta_truncate(Bytes frame_off);

    /**
     * The replicated watermark is advancing to @p counter. V1
     * (early ack): the counter must not exceed the newest durably
     * published checkpoint.
     */
    void on_watermark_advance(std::uint64_t counter);

    /**
     * The slot payload [payload_off, payload_off+payload_len) was
     * quarantined (latent corruption detected by recovery or the
     * scrubber). Lifts V3 lost-update protection for the range so the
     * in-place salvage write is not reported as an overwrite of the
     * protected checkpoint; the repair site re-arms protection via
     * on_repair_durable().
     */
    void on_quarantine(Bytes payload_off, Bytes payload_len);

    /**
     * A repair write into [payload_off, payload_off+payload_len)
     * reported its persist→fence complete. V2: the range must now be
     * Durable. On success the range rejoins the V3-protected set.
     */
    void on_repair_durable(Bytes payload_off, Bytes payload_len);

    /** Device reformat: all protection and publish state resets. */
    void on_format();

    /** Newest durably published counter observed (0 before any). */
    std::uint64_t last_published_counter() const;

  private:
    /** Per-line durability states (docs/PSAN.md state machine). */
    enum class LineState : std::uint8_t {
        kClean = 0,  ///< untouched this run; media content is stable
        kDirty,      ///< written, persistence not initiated
        kFlushPending,  ///< persist initiated, fence outstanding
        kDurable,       ///< guaranteed on media
    };

    /** One coalesced run of same-state lines: [begin, end) lines. */
    struct Run {
        Bytes end = 0;
        LineState state = LineState::kClean;
    };

    Bytes line_of(Bytes offset) const { return offset / line_size_; }
    /** First line strictly past [offset, offset+len). */
    Bytes line_end_of(Bytes offset, Bytes len) const
    {
        return len == 0 ? line_of(offset) : line_of(offset + len - 1) + 1;
    }

    /** Set [first, last) lines to @p state (kClean = erase). */
    void set_lines(Bytes first, Bytes last, LineState state)
        PCCHECK_REQUIRES(mu_);
    /** Split any run straddling @p line so runs align to it. */
    void split_at(Bytes line) PCCHECK_REQUIRES(mu_);
    /** Merge @p it with its predecessor/successor when same-state. */
    void coalesce_around(std::map<Bytes, Run>::iterator it)
        PCCHECK_REQUIRES(mu_);
    /** Lines of [first, last) NOT in @p state. */
    std::uint64_t count_lines_not(Bytes first, Bytes last,
                                  LineState state) const
        PCCHECK_REQUIRES(mu_);
    /**
     * First line in [first, last) that is Dirty or FlushPending, or
     * kNoLine when the whole range is stable (Durable/Clean).
     */
    Bytes first_unstable(Bytes first, Bytes last) const
        PCCHECK_REQUIRES(mu_);
    bool any_flush_pending() const PCCHECK_REQUIRES(mu_);

    /** Byte-range overlap query against an interval set. */
    static bool ranges_overlap(const std::map<Bytes, Bytes>& set,
                               Bytes offset, Bytes len, Bytes* hit_begin,
                               Bytes* hit_end);

    void violation(psan::Rule rule, Bytes offset, Bytes len,
                   const std::string& message) const PCCHECK_REQUIRES(mu_);

    StorageDevice* inner_;
    std::unique_ptr<StorageDevice> owned_;
    StorageKind kind_;
    Bytes line_size_;
    bool fence_commits_;  ///< needs_fence(kind): persist → FlushPending

    mutable Mutex mu_;
    /** Shadow interval map: start line → run. kClean runs are absent. */
    std::map<Bytes, Run> runs_ PCCHECK_GUARDED_BY(mu_);
    /** V3-protected byte ranges: the live slot payload (replaced per
     *  publish) and sealed delta frames (cleared per epoch reset). */
    std::map<Bytes, Bytes> slot_protect_ PCCHECK_GUARDED_BY(mu_);
    std::map<Bytes, Bytes> delta_protect_ PCCHECK_GUARDED_BY(mu_);
    bool has_published_ PCCHECK_GUARDED_BY(mu_) = false;
    std::uint64_t published_counter_ PCCHECK_GUARDED_BY(mu_) = 0;
    /** Monotonic per-device op index for violation provenance. */
    std::uint64_t op_index_ PCCHECK_GUARDED_BY(mu_) = 0;
};

}  // namespace pccheck

#endif  // PCCHECK_PSAN_PSAN_STORAGE_H_
