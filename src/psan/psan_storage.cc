#include "psan/psan_storage.h"

#include <sstream>
#include <utility>
#include <vector>

#include "util/check.h"

namespace pccheck {
namespace {

/** Sentinel for "no such line" from range scans. */
constexpr Bytes kNoLine = static_cast<Bytes>(-1);

Bytes
line_size_for(StorageKind kind)
{
    // Mirrors CrashSimStorage: 4 KiB msync pages for SSD, 64 B cache
    // lines for the PMEM kinds; DRAM gets the cache-line granularity
    // too (persist commits directly, so the size only affects report
    // ranges).
    return kind == StorageKind::kSsdMsync ? Bytes{4096} : Bytes{64};
}

}  // namespace

PsanStorage::PsanStorage(StorageDevice& inner)
    : inner_(&inner),
      kind_(inner.kind()),
      line_size_(line_size_for(kind_)),
      fence_commits_(needs_fence(kind_))
{
}

PsanStorage::PsanStorage(std::unique_ptr<StorageDevice> inner)
    : inner_(inner.get()),
      owned_(std::move(inner)),
      kind_(owned_->kind()),
      line_size_(line_size_for(kind_)),
      fence_commits_(needs_fence(kind_))
{
    PCCHECK_CHECK(inner_ != nullptr);
}

void
PsanStorage::split_at(Bytes line)
{
    auto it = runs_.upper_bound(line);
    if (it == runs_.begin()) {
        return;
    }
    --it;
    if (it->first < line && line < it->second.end) {
        Run tail{it->second.end, it->second.state};
        it->second.end = line;
        runs_.emplace(line, tail);
    }
}

void
PsanStorage::coalesce_around(std::map<Bytes, Run>::iterator it)
{
    if (it != runs_.begin()) {
        auto prev = std::prev(it);
        if (prev->second.end == it->first &&
            prev->second.state == it->second.state) {
            prev->second.end = it->second.end;
            runs_.erase(it);
            it = prev;
        }
    }
    auto next = std::next(it);
    if (next != runs_.end() && it->second.end == next->first &&
        it->second.state == next->second.state) {
        it->second.end = next->second.end;
        runs_.erase(next);
    }
}

void
PsanStorage::set_lines(Bytes first, Bytes last, LineState state)
{
    if (first >= last) {
        return;
    }
    split_at(first);
    split_at(last);
    auto it = runs_.lower_bound(first);
    while (it != runs_.end() && it->first < last) {
        it = runs_.erase(it);
    }
    if (state != LineState::kClean) {
        auto inserted = runs_.emplace(first, Run{last, state}).first;
        coalesce_around(inserted);
    }
}

std::uint64_t
PsanStorage::count_lines_not(Bytes first, Bytes last, LineState state) const
{
    if (first >= last) {
        return 0;
    }
    std::uint64_t matching = 0;
    auto it = runs_.upper_bound(first);
    if (it != runs_.begin()) {
        --it;
    }
    for (; it != runs_.end() && it->first < last; ++it) {
        if (it->second.state != state) {
            continue;
        }
        const Bytes begin = it->first > first ? it->first : first;
        const Bytes end = it->second.end < last ? it->second.end : last;
        if (begin < end) {
            matching += end - begin;
        }
    }
    return (last - first) - matching;
}

Bytes
PsanStorage::first_unstable(Bytes first, Bytes last) const
{
    auto it = runs_.upper_bound(first);
    if (it != runs_.begin()) {
        --it;
    }
    for (; it != runs_.end() && it->first < last; ++it) {
        if (it->second.end <= first) {
            continue;
        }
        if (it->second.state == LineState::kDirty ||
            it->second.state == LineState::kFlushPending) {
            return it->first > first ? it->first : first;
        }
    }
    return kNoLine;
}

bool
PsanStorage::any_flush_pending() const
{
    for (const auto& [begin, run] : runs_) {
        (void)begin;
        if (run.state == LineState::kFlushPending) {
            return true;
        }
    }
    return false;
}

bool
PsanStorage::ranges_overlap(const std::map<Bytes, Bytes>& set, Bytes offset,
                            Bytes len, Bytes* hit_begin, Bytes* hit_end)
{
    if (len == 0 || set.empty()) {
        return false;
    }
    auto it = set.upper_bound(offset);
    if (it != set.begin()) {
        auto prev = std::prev(it);
        if (prev->first + prev->second > offset) {
            *hit_begin = prev->first;
            *hit_end = prev->first + prev->second;
            return true;
        }
    }
    if (it != set.end() && it->first < offset + len) {
        *hit_begin = it->first;
        *hit_end = it->first + it->second;
        return true;
    }
    return false;
}

void
PsanStorage::violation(psan::Rule rule, Bytes offset, Bytes len,
                       const std::string& message) const
{
    psan::Violation v;
    v.rule = rule;
    v.label = psan::ScopeLabel::current();
    v.op_index = op_index_;
    v.offset = offset;
    v.len = len;
    v.message = message;
    psan::Runtime::global().report(v);
}

StorageStatus
PsanStorage::write(Bytes offset, const void* src, Bytes len)
{
    {
        MutexLock lock(mu_);
        ++op_index_;
        Bytes hit_begin = 0;
        Bytes hit_end = 0;
        if (ranges_overlap(slot_protect_, offset, len, &hit_begin,
                           &hit_end)) {
            std::ostringstream oss;
            oss << "lost-update: overwrite of the newest durable "
                   "checkpoint's payload (protected range ["
                << hit_begin << "," << hit_end << "), counter "
                << published_counter_ << ")";
            violation(psan::Rule::kV3LostUpdate, offset, len, oss.str());
        } else if (ranges_overlap(delta_protect_, offset, len, &hit_begin,
                                  &hit_end)) {
            std::ostringstream oss;
            oss << "lost-update: overwrite of a sealed delta frame "
                   "(protected range ["
                << hit_begin << "," << hit_end << "))";
            violation(psan::Rule::kV3LostUpdate, offset, len, oss.str());
        }
    }
    StorageStatus status = inner_->write(offset, src, len);
    if (len != 0) {
        // Even a failed write leaves the range "not durable" (device.h
        // contract), so the shadow dirties it unconditionally.
        MutexLock lock(mu_);
        set_lines(line_of(offset), line_end_of(offset, len),
                  LineState::kDirty);
    }
    return status;
}

StorageStatus
PsanStorage::read(Bytes offset, void* dst, Bytes len) const
{
    if (psan::RecoveryScope::active() && len != 0) {
        MutexLock lock(mu_);
        const Bytes line =
            first_unstable(line_of(offset), line_end_of(offset, len));
        if (line != kNoLine) {
            violation(psan::Rule::kV5NondurableRead, line * line_size_,
                      line_size_,
                      "nondurable-read: recovery read a line never made "
                      "durable");
        }
    }
    return inner_->read(offset, dst, len);
}

StorageStatus
PsanStorage::persist(Bytes offset, Bytes len)
{
    const Bytes first = line_of(offset);
    const Bytes last = line_end_of(offset, len);
    {
        MutexLock lock(mu_);
        ++op_index_;
        // V4 bookkeeping against the pre-op shadow: a persist is
        // useful exactly on Dirty lines; everything else it covers
        // (Clean, FlushPending, already Durable) is wasted flush work.
        const std::uint64_t redundant =
            count_lines_not(first, last, LineState::kDirty);
        psan::Runtime::global().note_persist(psan::ScopeLabel::current(),
                                             redundant == last - first,
                                             redundant);
    }
    StorageStatus status = inner_->persist(offset, len);
    if (status.ok() && len != 0) {
        MutexLock lock(mu_);
        // Dirty lines advance; lines in other states keep them (a
        // persist never regresses Durable, and Clean stays absent).
        split_at(first);
        split_at(last);
        std::vector<std::pair<Bytes, Bytes>> dirty;
        auto it = runs_.lower_bound(first);
        for (; it != runs_.end() && it->first < last; ++it) {
            if (it->second.state == LineState::kDirty) {
                dirty.emplace_back(it->first, it->second.end);
            }
        }
        const LineState next = fence_commits_ ? LineState::kFlushPending
                                              : LineState::kDurable;
        for (const auto& [begin, end] : dirty) {
            set_lines(begin, end, next);
        }
    }
    return status;
}

StorageStatus
PsanStorage::fence()
{
    if (fence_commits_) {
        MutexLock lock(mu_);
        ++op_index_;
        psan::Runtime::global().note_fence(psan::ScopeLabel::current(),
                                           !any_flush_pending());
    } else {
        MutexLock lock(mu_);
        ++op_index_;
        // SSD/DRAM fences are inherent no-ops, never V4-redundant.
    }
    StorageStatus status = inner_->fence();
    if (status.ok() && fence_commits_) {
        MutexLock lock(mu_);
        std::vector<std::pair<Bytes, Bytes>> pending;
        for (const auto& [begin, run] : runs_) {
            if (run.state == LineState::kFlushPending) {
                pending.emplace_back(begin, run.end);
            }
        }
        for (const auto& [begin, end] : pending) {
            set_lines(begin, end, LineState::kDurable);
        }
    }
    return status;
}

void
PsanStorage::on_publish_begin(std::uint64_t counter, Bytes payload_off,
                              Bytes payload_len)
{
    MutexLock lock(mu_);
    const Bytes line = first_unstable(line_of(payload_off),
                                      line_end_of(payload_off, payload_len));
    if (line != kNoLine) {
        std::ostringstream oss;
        oss << "ack-before-payload: publish of checkpoint " << counter
            << " reaches payload line " << line
            << " that is not yet durable";
        violation(psan::Rule::kV1AckBeforePayload, line * line_size_,
                  line_size_, oss.str());
    }
}

void
PsanStorage::on_publish_durable(std::uint64_t counter, Bytes record_off,
                                Bytes record_len, Bytes payload_off,
                                Bytes payload_len)
{
    MutexLock lock(mu_);
    const Bytes line = first_unstable(line_of(record_off),
                                      line_end_of(record_off, record_len));
    if (line != kNoLine) {
        std::ostringstream oss;
        oss << "missing-fence: pointer record for checkpoint " << counter
            << " was published without being made durable";
        violation(psan::Rule::kV2MissingFence, record_off, record_len,
                  oss.str());
    }
    // The live slot moves: only the newest durably published payload is
    // protected against overwrite (the superseded slot is legitimately
    // recycled, and record lines alternate by design).
    slot_protect_.clear();
    if (payload_len != 0) {
        slot_protect_[payload_off] = payload_len;
    }
    has_published_ = true;
    if (counter > published_counter_) {
        published_counter_ = counter;
    }
}

void
PsanStorage::on_quarantine(Bytes payload_off, Bytes payload_len)
{
    MutexLock lock(mu_);
    // The quarantined payload is known-corrupt: overwriting it with a
    // salvage write is the point, not a lost update. Drop any
    // protected range that overlaps it.
    for (auto it = slot_protect_.begin(); it != slot_protect_.end();) {
        const Bytes begin = it->first;
        const Bytes end = it->first + it->second;
        if (begin < payload_off + payload_len && payload_off < end) {
            it = slot_protect_.erase(it);
        } else {
            ++it;
        }
    }
}

void
PsanStorage::on_repair_durable(Bytes payload_off, Bytes payload_len)
{
    MutexLock lock(mu_);
    const Bytes line = first_unstable(line_of(payload_off),
                                      line_end_of(payload_off, payload_len));
    if (line != kNoLine) {
        violation(psan::Rule::kV2MissingFence, payload_off, payload_len,
                  "missing-fence: repaired slot payload was reported "
                  "durable without persist+fence");
    }
    if (payload_len != 0) {
        slot_protect_[payload_off] = payload_len;
    }
}

void
PsanStorage::on_seal_begin(Bytes frame_off, Bytes preseal_len)
{
    MutexLock lock(mu_);
    const Bytes line = first_unstable(line_of(frame_off),
                                      line_end_of(frame_off, preseal_len));
    if (line != kNoLine) {
        std::ostringstream oss;
        oss << "ack-before-payload: delta frame seal at " << frame_off
            << " covers payload line " << line
            << " that is not yet durable";
        violation(psan::Rule::kV1AckBeforePayload, line * line_size_,
                  line_size_, oss.str());
    }
}

void
PsanStorage::on_seal_durable(Bytes frame_off, Bytes frame_len)
{
    MutexLock lock(mu_);
    const Bytes header_line = line_of(frame_off);
    const Bytes line = first_unstable(header_line, header_line + 1);
    if (line != kNoLine) {
        violation(psan::Rule::kV2MissingFence, frame_off, line_size_,
                  "missing-fence: delta frame header sealed without being "
                  "made durable");
    }
    if (frame_len != 0) {
        delta_protect_[frame_off] = frame_len;
    }
}

void
PsanStorage::on_epoch_reset()
{
    MutexLock lock(mu_);
    delta_protect_.clear();
}

void
PsanStorage::on_delta_truncate(Bytes frame_off)
{
    MutexLock lock(mu_);
    // Frames are laid out in append order, so every protected range at
    // or past the dying header belongs to the unreachable tail.
    delta_protect_.erase(delta_protect_.lower_bound(frame_off),
                         delta_protect_.end());
}

void
PsanStorage::on_watermark_advance(std::uint64_t counter)
{
    MutexLock lock(mu_);
    if (!has_published_ || counter > published_counter_) {
        std::ostringstream oss;
        oss << "ack-before-payload: replicated watermark advanced to "
            << counter << " ahead of the newest durable publish "
            << (has_published_ ? published_counter_ : 0);
        violation(psan::Rule::kV1AckBeforePayload, 0, 0, oss.str());
    }
}

void
PsanStorage::on_format()
{
    MutexLock lock(mu_);
    slot_protect_.clear();
    delta_protect_.clear();
    has_published_ = false;
    published_counter_ = 0;
}

std::uint64_t
PsanStorage::last_published_counter() const
{
    MutexLock lock(mu_);
    return has_published_ ? published_counter_ : 0;
}

}  // namespace pccheck
