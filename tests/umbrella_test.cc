/**
 * @file
 * Compilation test for the umbrella header: pccheck.h must be
 * self-contained, and one symbol from every area must be reachable
 * through it alone.
 */

#include "pccheck.h"

#include <gtest/gtest.h>

namespace pccheck {
namespace {

TEST(UmbrellaTest, EveryAreaReachable)
{
    // util
    EXPECT_EQ(format_bytes(kMiB), "1.00 MiB");
    Rng rng(1);
    EXPECT_LT(rng.next_double(), 1.0);
    // storage
    MemStorage mem(4096);
    EXPECT_EQ(mem.kind(), StorageKind::kDram);
    // gpusim + trainsim
    GpuConfig gpu_config;
    gpu_config.memory_bytes = kMiB;
    gpu_config.pcie_bytes_per_sec = 0;
    SimGpu gpu(gpu_config);
    TrainingState state(gpu, 8192);
    EXPECT_EQ(state.iteration(), 0u);
    DataLoader loader(10, 5, 1);
    EXPECT_EQ(loader.batches_per_epoch(), 2u);
    // core
    PCcheckConfig config;
    config.validate();
    EXPECT_EQ(config.to_string().substr(0, 7), "pccheck");
    EXPECT_EQ(min_checkpoint_interval(1.0, 1, 1.0, 1.0), 1u);
    EXPECT_EQ(plan_shards(8192, 2).size(), 2u);
    // goodput + trace + sim
    EXPECT_GT(analytic_throughput("ideal",
                                  AnalyticInputs{.iteration_time = 1.0,
                                                 .checkpoint_bytes = 1,
                                                 .interval = 1}),
              0.0);
    EXPECT_EQ(gcp_a100_profile().name, "gcp-a100");
    TimelineParams params;
    params.iterations = 1;
    EXPECT_GT(simulate_timeline(Discipline::kSync, params).makespan, 0);
    // baselines exist
    EXPECT_DOUBLE_EQ(model_footprint("gpm").dram_max, 0.0);
}

}  // namespace
}  // namespace pccheck
