/**
 * @file
 * Recovery-under-fire storm: a seeded sweep that arms bit-rot,
 * unreadable-sector, and crash faults WHILE the RecoveryPlanner is
 * running, then asserts the tentpole guarantees of docs/RECOVERY.md:
 *
 *   - armored recovery (local arena + peer replica) restores the
 *     newest checkpoint byte-exactly no matter which reads lie;
 *   - recovery is re-entrant: a crash image captured mid-recovery
 *     (mid-quarantine, mid-salvage, mid-publish) recovers again, and
 *     repeated recoveries reach a fixpoint — same counter, same
 *     bytes, byte-identical media;
 *   - quarantine accounting: every slot the planner quarantines is
 *     durably excluded from recovery until repaired, the planner's
 *     slots_quarantined report matches the store's bitmap delta, and
 *     no published pointer ever references a quarantined slot.
 *
 * Runs 64 seeds by default; PCCHECK_RECOVERY_STORM_SEEDS overrides
 * (CI smoke runs 8 under sanitizers). Every failure replays from its
 * printed seed.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/recovery_planner.h"
#include "core/slot_store.h"
#include "faults/fault.h"
#include "faults/faulty_storage.h"
#include "net/network.h"
#include "psan/psan.h"
#include "remote/replica_source.h"
#include "remote/replica_store.h"
#include "remote/replication.h"
#include "storage/crash_sim.h"
#include "storage/mem_storage.h"
#include "util/check.h"
#include "util/crc32.h"
#include "util/logging.h"
#include "util/rng.h"

namespace pccheck {
namespace {

constexpr Bytes kState = 4 * 1024;
constexpr std::uint32_t kSlots = 2;
constexpr std::uint64_t kCheckpoints = 3;

int
sweep_seeds(int fallback)
{
    const char* env = std::getenv("PCCHECK_RECOVERY_STORM_SEEDS");
    if (env != nullptr && std::atoi(env) > 0) {
        return std::atoi(env);
    }
    return fallback;
}

/** Asserts the enclosing scope reported no psan violations. */
class PsanCleanGuard {
  public:
    PsanCleanGuard() : before_(psan::Runtime::global().violation_count()) {}
    ~PsanCleanGuard()
    {
        EXPECT_EQ(psan::Runtime::global().violation_count(), before_)
            << "storm must be psan-clean";
    }

  private:
    std::uint64_t before_;
};

std::vector<std::uint8_t>
image_for(std::uint64_t counter)
{
    std::vector<std::uint8_t> image(kState);
    for (Bytes j = 0; j < kState; ++j) {
        image[j] = static_cast<std::uint8_t>((counter * 131 + j) & 0xFF);
    }
    return image;
}

/** Fixture for one seed: faulted media + a peer holding the newest. */
struct Storm {
    std::shared_ptr<FaultInjector> injector;
    CrashSimStorage* media = nullptr;  ///< owned by device
    std::unique_ptr<FaultyStorage> device;
    std::unique_ptr<SimNetwork> network;
    std::unique_ptr<ReplicaStore> peer_store;
    std::vector<ReplicaPeer> peers;
    std::vector<std::vector<std::uint8_t>> expected;  ///< [counter]
    bool rotted = false;  ///< newest slot durably corrupted pre-storm
};

Storm
make_storm(std::uint64_t seed)
{
    Storm storm;
    storm.injector = std::make_shared<FaultInjector>(seed);
    auto media = std::make_unique<CrashSimStorage>(
        SlotStore::required_size(kSlots, kState), StorageKind::kPmemClwb,
        seed, 0.5);
    storm.media = media.get();
    storm.device =
        std::make_unique<FaultyStorage>(std::move(media), storm.injector);

    SlotStore store = SlotStore::format(*storm.device, kSlots, kState);
    storm.expected.resize(kCheckpoints + 1);
    for (std::uint64_t c = 1; c <= kCheckpoints; ++c) {
        storm.expected[c] = image_for(c);
        const std::vector<std::uint8_t>& image = storm.expected[c];
        const auto slot = static_cast<std::uint32_t>(c % kSlots);
        PCCHECK_MUST(store.write_slot(slot, 0, image.data(), image.size()));
        PCCHECK_MUST(store.persist_slot_range(slot, 0, image.size()));
        PCCHECK_MUST(storm.device->fence());
        PCCHECK_MUST(store.publish_pointer(
            CheckpointPointer{c, slot, kState, c * 10,
                              crc32c(image.data(), image.size())}));
    }

    // Half the seeds start with latent rot already on the newest slot:
    // the storm then exercises quarantine + salvage, not just retries.
    if (seed % 2 == 0) {
        const auto slot = static_cast<std::uint32_t>(kCheckpoints % kSlots);
        const Bytes off = store.slot_offset(slot) + (seed % kState);
        std::uint8_t byte = 0;
        PCCHECK_MUST(storm.device->read(off, &byte, 1));
        byte ^= 0x80;
        PCCHECK_MUST(storm.device->write(off, &byte, 1));
        PCCHECK_MUST(storm.device->persist(off, 1));
        PCCHECK_MUST(storm.device->fence());
        storm.rotted = true;
    }

    NetworkConfig net;
    net.nodes = 2;
    net.latency = 0;
    storm.network = std::make_unique<SimNetwork>(net);
    storm.peer_store = std::make_unique<ReplicaStore>();
    const std::vector<std::uint8_t>& newest =
        storm.expected[kCheckpoints];
    storm.peer_store->store_chunk(kCheckpoints, kCheckpoints * 10,
                                  newest.size(), 0, newest.data(),
                                  newest.size());
    PCCHECK_CHECK(storm.peer_store->seal(
        kCheckpoints, crc32c(newest.data(), newest.size())));
    storm.peers.push_back(ReplicaPeer{1, storm.peer_store.get()});
    return storm;
}

/** One armored planner run against @p device. */
std::optional<PlannedRecovery>
armored_recover(Storm& storm, StorageDevice& device,
                std::vector<std::uint8_t>* out)
{
    RecoveryPlanner planner(&device);
    ReplicaRecoverySource replicas(*storm.network, /*self_node=*/0,
                                   storm.peers);
    planner.add_source(&replicas);
    return planner.recover(out);
}

std::vector<std::uint8_t>
volatile_image(StorageDevice& device)
{
    std::vector<std::uint8_t> image(device.size());
    PCCHECK_MUST(device.read(0, image.data(), image.size()));
    return image;
}

/** Quarantined slots as durably recorded on @p device (fault-free). */
std::vector<std::uint32_t>
quarantine_set(StorageDevice& device)
{
    return SlotStore::open(device).quarantined_slots();
}

TEST(RecoveryStormTest, ArmoredRecoverySurvivesReadFaultsAndCrashes)
{
    PsanCleanGuard psan_clean;
    const int seeds = sweep_seeds(64);
    int crashes_captured = 0;
    int storms_quarantined = 0;
    for (int s = 1; s <= seeds; ++s) {
        const std::uint64_t seed = 7000 + static_cast<std::uint64_t>(s);
        SCOPED_TRACE("seed " + std::to_string(seed));
        Storm storm = make_storm(seed);

        // Arm the weather: probabilistic bit rot and bad sectors on
        // every read, plus a crash trigger at a seed-chosen op index.
        // kCrash snapshots the adversarial media image and lets the
        // op proceed, so one run tests both "recovery finishes under
        // fire" and "recovery restarts from a mid-recovery crash".
        Rng pick(seed * 0x9E3779B97F4A7C15ULL);
        FaultPlan plan;
        {
            // The op counter is global (setup publishes already spent
            // some); aim the trigger inside the recovery run itself.
            FaultRule crash;
            crash.point = "*";
            crash.action = FaultAction::kCrash;
            crash.trigger = FaultTrigger::kNthOp;
            crash.nth = storm.injector->ops() + 1 + pick.next_below(12);
            crash.limit = 1;
            plan.add(crash);
        }
        const char* weather[] = {
            "storage.read:bitflip=0x01@p=0.25",
            "storage.read:unreadable@p=0.2",
            "storage.read:bitflip=0x80@p=0.1;storage.read:unreadable@p=0.1",
        };
        const FaultPlan noise =
            FaultPlan::parse(weather[pick.next_below(3)]);
        for (const FaultRule& rule : noise.rules()) {
            plan.add(rule);
        }
        std::vector<std::uint8_t> crash_image;
        CrashSimStorage* media = storm.media;
        storm.injector->set_crash_handler(
            [&crash_image, media] { crash_image = media->crash_image(); });
        storm.injector->set_plan(std::move(plan));

        // Storm recovery: the peer always holds the newest image, so
        // no matter which local reads lie the planner must restore it.
        std::vector<std::uint8_t> bytes;
        const auto stormy = armored_recover(storm, *storm.device, &bytes);
        ASSERT_TRUE(stormy.has_value());
        EXPECT_EQ(stormy->result.counter, kCheckpoints);
        EXPECT_EQ(bytes, storm.expected[kCheckpoints]);

        // Calm the weather; everything from here on reads true.
        storm.injector->set_plan(FaultPlan());
        if (!crash_image.empty()) {
            ++crashes_captured;
        }

        // Quarantine accounting: only the newest local candidate is
        // ever quarantined (at most one per run), a successful salvage
        // releases it again, so the durable bitmap can only hold slots
        // the planner reported — and no published pointer may
        // reference one.
        if (stormy->slots_quarantined > 0) {
            ++storms_quarantined;
        }
        EXPECT_LE(stormy->slots_quarantined, 1u);
        {
            SlotStore store = SlotStore::open(*storm.device);
            const auto quarantined = store.quarantined_slots();
            EXPECT_LE(quarantined.size(), stormy->slots_quarantined);
            const auto ptr = store.recover_pointer(/*validate_data=*/false);
            if (ptr.has_value()) {
                for (std::uint32_t slot : quarantined) {
                    EXPECT_NE(ptr->slot, slot)
                        << "published pointer references a quarantined "
                           "slot";
                }
            }
        }

        // Recover-again fixpoint on the live device: the first calm
        // run may still salvage/repair; the one after it must change
        // nothing — same counter, same bytes, byte-identical media,
        // stable quarantine set.
        std::vector<std::uint8_t> calm_bytes;
        const auto calm =
            armored_recover(storm, *storm.device, &calm_bytes);
        ASSERT_TRUE(calm.has_value());
        EXPECT_EQ(calm->result.counter, kCheckpoints);
        EXPECT_EQ(calm_bytes, storm.expected[kCheckpoints]);
        const auto media_after_calm = volatile_image(*storm.device);
        const auto quarantine_after_calm = quarantine_set(*storm.device);

        std::vector<std::uint8_t> fix_bytes;
        const auto fixed = armored_recover(storm, *storm.device, &fix_bytes);
        ASSERT_TRUE(fixed.has_value());
        EXPECT_EQ(fixed->result.counter, calm->result.counter);
        EXPECT_EQ(fix_bytes, calm_bytes);
        EXPECT_EQ(volatile_image(*storm.device), media_after_calm)
            << "second calm recovery mutated the media (no fixpoint)";
        EXPECT_EQ(quarantine_set(*storm.device), quarantine_after_calm);

        // Re-entrancy from the mid-recovery crash image: whatever the
        // quarantine/salvage sequence was doing when the crash hit, a
        // fresh process must restore K via the peer and reach the same
        // fixpoint. Local-only recovery must either serve a real
        // checkpoint byte-exactly, or come up empty ONLY because the
        // storm had durably quarantined a slot (a transient read lie
        // can quarantine the good slot — the accounted, repairable
        // case the peer path and the scrubber exist for).
        if (!crash_image.empty()) {
            MemStorage dead(crash_image.size());
            std::memcpy(dead.raw(), crash_image.data(),
                        crash_image.size());
            std::vector<std::uint8_t> local_bytes;
            RecoveryPlanner local(&dead);
            const auto local_result = local.recover(&local_bytes);
            if (local_result.has_value()) {
                EXPECT_GE(local_result->result.counter,
                          kCheckpoints - 1);
                EXPECT_LE(local_result->result.counter, kCheckpoints);
                EXPECT_EQ(local_bytes,
                          storm.expected[local_result->result.counter]);
            } else {
                // Unexplained loss would be a durability bug; loss
                // with a quarantine record is the documented contract.
                MemStorage fresh(crash_image.size());
                std::memcpy(fresh.raw(), crash_image.data(),
                            crash_image.size());
                EXPECT_FALSE(quarantine_set(fresh).empty())
                    << "crash image lost every local checkpoint "
                       "without a quarantine record";
            }

            std::vector<std::uint8_t> armored_bytes;
            const auto armored =
                armored_recover(storm, dead, &armored_bytes);
            ASSERT_TRUE(armored.has_value());
            EXPECT_EQ(armored->result.counter, kCheckpoints);
            EXPECT_EQ(armored_bytes, storm.expected[kCheckpoints]);

            const auto dead_after = volatile_image(dead);
            std::vector<std::uint8_t> again_bytes;
            const auto again = armored_recover(storm, dead, &again_bytes);
            ASSERT_TRUE(again.has_value());
            EXPECT_EQ(again->result.counter, kCheckpoints);
            EXPECT_EQ(again_bytes, armored_bytes);
            EXPECT_EQ(volatile_image(dead), dead_after)
                << "re-entrant recovery mutated the repaired image";
        }
    }
    // The sweep must actually have exercised both hard paths.
    EXPECT_GT(crashes_captured, 0);
    EXPECT_GT(storms_quarantined, 0);
    LOG_INFO("recovery storm: " << seeds << " seeds, "
                                << crashes_captured << " crash images, "
                                << storms_quarantined
                                << " storms quarantined a slot");
}

TEST(RecoveryStormTest, LocalOnlyStormNeverRegressesPastLastGood)
{
    PsanCleanGuard psan_clean;
    const int seeds = sweep_seeds(64);
    for (int s = 1; s <= seeds; ++s) {
        const std::uint64_t seed = 9000 + static_cast<std::uint64_t>(s);
        SCOPED_TRACE("seed " + std::to_string(seed));
        Storm storm = make_storm(seed);

        // Transient weather only (no crash trigger, no peer), with
        // quarantine disabled: a planner that cannot write must never
        // durably regress anything, so whatever it returns is a real
        // checkpoint's exact bytes and the pre-storm floor of K-1
        // (the un-rotted slot) holds once the weather clears. (With
        // quarantine ON, a transient lie may durably quarantine the
        // good slot — that accounted case is the armored sweep's job.)
        storm.injector->set_plan(
            FaultPlan::parse("storage.read:bitflip=0x02@p=0.3;"
                             "storage.read:unreadable@p=0.2"));
        std::vector<std::uint8_t> bytes;
        RecoveryPlanner::Options readonly;
        readonly.quarantine = false;
        readonly.salvage = false;
        RecoveryPlanner stormy_planner(storm.device.get(), readonly);
        const auto stormy = stormy_planner.recover(&bytes);
        if (stormy.has_value()) {
            const std::uint64_t counter = stormy->result.counter;
            ASSERT_GE(counter, 1u);
            ASSERT_LE(counter, kCheckpoints);
            EXPECT_EQ(bytes, storm.expected[counter]);
        }

        storm.injector->set_plan(FaultPlan());
        std::vector<std::uint8_t> calm_bytes;
        RecoveryPlanner calm_planner(storm.device.get());
        const auto calm = calm_planner.recover(&calm_bytes);
        ASSERT_TRUE(calm.has_value())
            << "transient read faults durably destroyed all checkpoints";
        EXPECT_GE(calm->result.counter, kCheckpoints - 1);
        EXPECT_EQ(calm_bytes, storm.expected[calm->result.counter]);
    }
}

}  // namespace
}  // namespace pccheck
