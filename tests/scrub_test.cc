/**
 * @file
 * Scrubber unit tests (docs/RECOVERY.md §scrub): latent bit rot is
 * detected by CRC re-verification, quarantined durably, repaired from
 * a peer replica or the live in-DRAM state, re-verified from media,
 * and returned to service — or kept quarantined when no source can
 * produce verified bytes. Rotten delta frames are truncated, peer
 * ReplicaStores are re-verified in DRAM, and the whole repair path is
 * psan-clean (the acceptance demo of the recovery-under-fire work:
 * inject rot, watch the scrubber heal it from the peer, recover the
 * repaired slot locally).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "core/concurrent_commit.h"
#include "core/recovery_planner.h"
#include "core/slot_store.h"
#include "delta/delta_log.h"
#include "net/network.h"
#include "psan/psan.h"
#include "psan/psan_storage.h"
#include "remote/replica_source.h"
#include "remote/replica_store.h"
#include "remote/replication.h"
#include "scrub/scrubber.h"
#include "storage/crash_sim.h"
#include "storage/mem_storage.h"
#include "util/check.h"
#include "util/crc32.h"
#include "util/metrics.h"

namespace pccheck {
namespace {

constexpr Bytes kState = 1024;
constexpr std::uint32_t kSlots = 3;

std::vector<std::uint8_t>
image_for(std::uint64_t counter)
{
    std::vector<std::uint8_t> image(kState);
    for (Bytes j = 0; j < kState; ++j) {
        image[j] = static_cast<std::uint8_t>((counter * 131 + j) & 0xFF);
    }
    return image;
}

/** Publish @p counter into slot (counter % kSlots) under the full
 *  persist contract; returns the image. */
std::vector<std::uint8_t>
publish(SlotStore& store, StorageDevice& device, std::uint64_t counter)
{
    const std::vector<std::uint8_t> image = image_for(counter);
    const auto slot = static_cast<std::uint32_t>(counter % kSlots);
    PCCHECK_MUST(store.write_slot(slot, 0, image.data(), image.size()));
    PCCHECK_MUST(store.persist_slot_range(slot, 0, image.size()));
    PCCHECK_MUST(device.fence());
    PCCHECK_MUST(store.publish_pointer(
        CheckpointPointer{counter, slot, kState, counter * 10,
                          crc32c(image.data(), image.size())}));
    return image;
}

/** Durably flip one payload byte of @p counter's slot via @p device
 *  (pass the RAW device, not the psan wrapper — rot is the adversary,
 *  not the program). */
void
inject_rot(SlotStore& store, StorageDevice& device, std::uint64_t counter)
{
    const auto slot = static_cast<std::uint32_t>(counter % kSlots);
    const Bytes off = store.slot_offset(slot) + 11;
    std::uint8_t byte = 0;
    PCCHECK_MUST(device.read(off, &byte, 1));
    byte ^= 0x20;
    PCCHECK_MUST(device.write(off, &byte, 1));
    PCCHECK_MUST(device.persist(off, 1));
    PCCHECK_MUST(device.fence());
}

TEST(ScrubberTest, CleanStoreScansWithoutFindings)
{
    MemStorage device(SlotStore::required_size(kSlots, kState));
    SlotStore store = SlotStore::format(device, kSlots, kState);
    publish(store, device, 1);
    publish(store, device, 2);

    Scrubber scrubber(store);
    const ScrubReport report = scrubber.scrub_once();
    EXPECT_EQ(report.scanned, 1u);  // newest payload only
    EXPECT_EQ(report.corrupt, 0u);
    EXPECT_EQ(report.quarantined, 0u);
    EXPECT_EQ(report.repaired, 0u);
    EXPECT_TRUE(store.quarantined_slots().empty());
}

TEST(ScrubberTest, DetectsRotAndQuarantinesWithoutSources)
{
    MemStorage device(SlotStore::required_size(kSlots, kState));
    SlotStore store = SlotStore::format(device, kSlots, kState);
    publish(store, device, 1);
    publish(store, device, 2);
    inject_rot(store, device, 2);

    const std::uint64_t corrupt_before =
        MetricsRegistry::global().counter("pccheck.scrub.corrupt").value();
    Scrubber scrubber(store);
    const ScrubReport report = scrubber.scrub_once();
    EXPECT_EQ(report.corrupt, 1u);
    EXPECT_EQ(report.quarantined, 1u);
    EXPECT_EQ(report.repaired, 0u);  // nothing to repair from
    EXPECT_TRUE(store.is_quarantined(2 % kSlots));
    EXPECT_EQ(
        MetricsRegistry::global().counter("pccheck.scrub.corrupt").value(),
        corrupt_before + 1);

    // Recovery now skips the quarantined newest and serves counter 1.
    const auto ptr = store.recover_pointer();
    ASSERT_TRUE(ptr.has_value());
    EXPECT_EQ(ptr->counter, 1u);

    // The quarantine is sticky: a second pass neither double-counts
    // nor releases anything.
    const ScrubReport second = scrubber.scrub_once();
    EXPECT_EQ(second.quarantined, 0u);
    EXPECT_TRUE(store.is_quarantined(2 % kSlots));
}

// The acceptance demo: inject bit rot, let the scrubber detect it,
// repair from a peer replica over the simulated fabric, and return the
// slot to service — local recovery then restores the repaired
// checkpoint byte-exactly.
TEST(ScrubberTest, RepairsFromPeerReplicaAndReturnsSlotToService)
{
    MemStorage device(SlotStore::required_size(kSlots, kState));
    SlotStore store = SlotStore::format(device, kSlots, kState);
    publish(store, device, 1);
    const std::vector<std::uint8_t> newest = publish(store, device, 2);
    inject_rot(store, device, 2);

    NetworkConfig net;
    net.nodes = 2;
    net.latency = 0;
    SimNetwork network(net);
    ReplicaStore peer_store;
    peer_store.store_chunk(2, 20, newest.size(), 0, newest.data(),
                           newest.size());
    ASSERT_TRUE(peer_store.seal(2, crc32c(newest.data(), newest.size())));
    ReplicaRecoverySource replicas(network, /*self_node=*/0,
                                   {ReplicaPeer{1, &peer_store}});

    const std::uint64_t repaired_before =
        MetricsRegistry::global().counter("pccheck.scrub.repaired").value();
    Scrubber scrubber(store);
    scrubber.add_repair_source(&replicas);
    const ScrubReport report = scrubber.scrub_once();
    EXPECT_EQ(report.corrupt, 1u);
    EXPECT_EQ(report.quarantined, 1u);
    EXPECT_EQ(report.repaired, 1u);
    EXPECT_FALSE(store.is_quarantined(2 % kSlots));
    EXPECT_EQ(
        MetricsRegistry::global().counter("pccheck.scrub.repaired").value(),
        repaired_before + 1);

    // Back in service: plain local recovery restores the repaired
    // newest checkpoint with the exact original bytes.
    std::vector<std::uint8_t> bytes;
    RecoveryPlanner planner(&device);
    const auto recovered = planner.recover(&bytes);
    ASSERT_TRUE(recovered.has_value());
    EXPECT_EQ(recovered->result.counter, 2u);
    EXPECT_EQ(bytes, newest);

    // Healed for good: the next pass is clean.
    const ScrubReport second = scrubber.scrub_once();
    EXPECT_EQ(second.corrupt, 0u);
    EXPECT_EQ(second.repaired, 0u);
}

TEST(ScrubberTest, RepairsFromLiveStateWhenNoPeerServes)
{
    MemStorage device(SlotStore::required_size(kSlots, kState));
    SlotStore store = SlotStore::format(device, kSlots, kState);
    publish(store, device, 1);
    const std::vector<std::uint8_t> newest = publish(store, device, 2);
    inject_rot(store, device, 2);

    Scrubber scrubber(store);
    scrubber.set_live_state_provider(
        [&newest](std::uint64_t counter, std::vector<std::uint8_t>* out) {
            if (counter != 2) {
                return false;
            }
            *out = newest;
            return true;
        });
    const ScrubReport report = scrubber.scrub_once();
    EXPECT_EQ(report.corrupt, 1u);
    EXPECT_EQ(report.repaired, 1u);
    EXPECT_FALSE(store.is_quarantined(2 % kSlots));
    const auto ptr = store.recover_pointer();
    ASSERT_TRUE(ptr.has_value());
    EXPECT_EQ(ptr->counter, 2u);
}

TEST(ScrubberTest, RejectsLiveStateBytesThatFailTheRecordCrc)
{
    MemStorage device(SlotStore::required_size(kSlots, kState));
    SlotStore store = SlotStore::format(device, kSlots, kState);
    publish(store, device, 1);
    publish(store, device, 2);
    inject_rot(store, device, 2);

    Scrubber scrubber(store);
    scrubber.set_live_state_provider(
        [](std::uint64_t, std::vector<std::uint8_t>* out) {
            // Right length, wrong bytes: a repair that trusted this
            // would replace rot with different rot.
            out->assign(kState, 0xAB);
            return true;
        });
    const ScrubReport report = scrubber.scrub_once();
    EXPECT_EQ(report.corrupt, 1u);
    EXPECT_EQ(report.repaired, 0u);
    EXPECT_TRUE(store.is_quarantined(2 % kSlots));
}

TEST(ScrubberTest, ReclaimsSupersededQuarantinedSlotIntoFreePool)
{
    MemStorage device(SlotStore::required_size(kSlots, kState));
    SlotStore store = SlotStore::format(device, kSlots, kState);
    publish(store, device, 1);
    publish(store, device, 2);
    // Slot 1 held counter 1, which slot-1-record no longer... it does:
    // counter 1's record still lists slot 1, but counter 2 is the
    // newest. Quarantine an entirely unreferenced slot instead: slot 0
    // holds nothing.
    PCCHECK_MUST(store.quarantine_slot(0));

    // The commit protocol, opened on this state, withholds the
    // quarantined slot from its free pool.
    ConcurrentCommit commit(store);
    std::vector<CheckpointTicket> tickets;
    CheckpointTicket ticket;
    while (commit.try_begin(&ticket)) {
        tickets.push_back(ticket);
    }
    const std::size_t free_before = tickets.size();
    for (const CheckpointTicket& t : tickets) {
        commit.abort(t);
    }

    Scrubber scrubber(store);
    scrubber.set_commit(&commit);
    const ScrubReport report = scrubber.scrub_once();
    EXPECT_EQ(report.repaired, 1u);  // reclaimed counts as healed
    EXPECT_FALSE(store.is_quarantined(0));

    tickets.clear();
    while (commit.try_begin(&ticket)) {
        tickets.push_back(ticket);
    }
    EXPECT_EQ(tickets.size(), free_before + 1)
        << "reclaimed slot did not return to the free pool";
    for (const CheckpointTicket& t : tickets) {
        commit.abort(t);
    }
}

// Regression: once the newest record's slot is quarantined, the
// scrubber must NOT fall through to rot-checking older records. Their
// slots are recycled by live commits, so a payload mismatch there is
// routine reuse — quarantining it would poison a slot the commit
// protocol may be writing right now.
TEST(ScrubberTest, NewestQuarantinedNeverFallsThroughToOlderRecords)
{
    MemStorage device(SlotStore::required_size(kSlots, kState));
    SlotStore store = SlotStore::format(device, kSlots, kState);
    publish(store, device, 1);
    publish(store, device, 2);
    inject_rot(store, device, 2);

    Scrubber scrubber(store);
    ASSERT_EQ(scrubber.scrub_once().quarantined, 1u);
    ASSERT_TRUE(store.is_quarantined(2 % kSlots));

    // A live commit rewrites counter 1's slot while the stale record
    // still names it — what every in-flight checkpoint does.
    inject_rot(store, device, 1);
    const ScrubReport second = scrubber.scrub_once();
    EXPECT_EQ(second.scanned, 0u);  // newest quarantined: nothing scanned
    EXPECT_EQ(second.corrupt, 0u);
    EXPECT_EQ(second.quarantined, 0u);
    EXPECT_FALSE(store.is_quarantined(1 % kSlots))
        << "scrubber rot-checked an older record's recyclable slot";
}

// Regression: reclaiming a slot that was quarantined AFTER the commit
// protocol already pooled it (e.g. by a concurrent recovery on another
// handle) must not enqueue it a second time — restore_slot() only
// re-admits slots the protocol actually withheld at construction.
TEST(ScrubberTest, ReclaimOfSlotStillInFreePoolIsNotDoubleAdded)
{
    MemStorage device(SlotStore::required_size(kSlots, kState));
    SlotStore store = SlotStore::format(device, kSlots, kState);
    publish(store, device, 1);
    publish(store, device, 2);

    // Slot 0 is unreferenced, so construction pools it; only THEN is
    // it quarantined.
    ConcurrentCommit commit(store);
    PCCHECK_MUST(store.quarantine_slot(0));

    Scrubber scrubber(store);
    scrubber.set_commit(&commit);
    scrubber.scrub_once();  // releases slot 0; restore must be a no-op
    EXPECT_FALSE(store.is_quarantined(0));

    std::vector<CheckpointTicket> tickets;
    CheckpointTicket ticket;
    while (commit.try_begin(&ticket)) {
        tickets.push_back(ticket);
    }
    ASSERT_EQ(tickets.size(), 2u) << "slot re-admitted to the pool twice";
    EXPECT_NE(tickets[0].slot, tickets[1].slot);
    for (const CheckpointTicket& t : tickets) {
        commit.abort(t);
    }
}

// Regression: a quarantine taken through an independently opened
// handle on the same device (what RecoveryPlanner does internally) is
// visible to the original handle immediately, without a reopen — the
// in-memory quarantine cache is shared per device, not per handle.
TEST(ScrubberTest, QuarantineOnAnotherHandleIsVisibleImmediately)
{
    MemStorage device(SlotStore::required_size(kSlots, kState));
    SlotStore store = SlotStore::format(device, kSlots, kState);
    publish(store, device, 1);
    publish(store, device, 2);

    SlotStore other = SlotStore::open(device);
    PCCHECK_MUST(other.quarantine_slot(2 % kSlots));
    EXPECT_TRUE(store.is_quarantined(2 % kSlots));
    const auto ptr = store.recover_pointer();
    ASSERT_TRUE(ptr.has_value());
    EXPECT_EQ(ptr->counter, 1u);  // original handle skips it too

    // The release is visible the other way round as well. (The slot's
    // bytes were never corrupted here, so releasing is legitimate.)
    PCCHECK_MUST(other.release_quarantine(2 % kSlots));
    EXPECT_FALSE(store.is_quarantined(2 % kSlots));
}

// Regression: concurrent stop()s (an explicit stop racing the
// destructor) and start()-during-stop must not double-join or assign
// over a joinable thread handle.
TEST(ScrubberTest, ConcurrentStopsAndRestartsAreSafe)
{
    MemStorage device(SlotStore::required_size(kSlots, kState));
    SlotStore store = SlotStore::format(device, kSlots, kState);
    publish(store, device, 1);

    Scrubber::Options options;
    options.interval = 0.0005;
    Scrubber scrubber(store, options);
    for (int round = 0; round < 25; ++round) {
        scrubber.start();
        std::thread stopper([&scrubber] { scrubber.stop(); });
        std::thread restarter([&scrubber] { scrubber.start(); });
        scrubber.stop();
        stopper.join();
        restarter.join();
        scrubber.stop();  // shut down whatever the restart left running
    }
    EXPECT_GE(scrubber.totals().scanned, 0u);
}

TEST(ScrubberTest, TruncatesRottenDeltaFrames)
{
    constexpr Bytes kDeltaBytes = 4 * 1024;
    MemStorage device(
        SlotStore::required_size(kSlots, kState, kDeltaBytes));
    SlotStore store = SlotStore::format(device, kSlots, kState,
                                        kDeltaBytes);
    publish(store, device, 1);

    DeltaLog log(device, DeltaRegion{store.delta_offset(),
                                     store.delta_bytes()});
    log.reset_epoch(/*base_counter=*/1, /*base_iteration=*/10);
    const std::vector<DeltaChunk> chunks{{0, 64}};
    std::vector<std::uint8_t> payload(64, 0x5A);
    PCCHECK_MUST(log.append(11, chunks, payload.data()));
    PCCHECK_MUST(log.append(12, chunks, payload.data()));

    // Rot one byte of the FIRST frame's payload (64B header, then
    // payload): replay would now silently stop before frame 1.
    const Bytes rot_off = store.delta_offset() + 64;
    std::uint8_t byte = 0;
    PCCHECK_MUST(device.read(rot_off, &byte, 1));
    byte ^= 0x01;
    PCCHECK_MUST(device.write(rot_off, &byte, 1));
    PCCHECK_MUST(device.persist(rot_off, 1));
    PCCHECK_MUST(device.fence());

    Scrubber scrubber(store);
    const ScrubReport report = scrubber.scrub_once();
    EXPECT_EQ(report.corrupt, 1u);
    EXPECT_EQ(report.frames_truncated, 1u);

    // The truncation is durable and explicit: replay applies zero
    // frames, and the next scrub pass has nothing left to flag.
    std::vector<std::uint8_t> image = image_for(1);
    const DeltaReplayStats replay = delta_replay(
        device, DeltaRegion{store.delta_offset(), store.delta_bytes()},
        1, 10, image.data(), image.size());
    EXPECT_EQ(replay.frames_applied, 0u);
    const ScrubReport second = scrubber.scrub_once();
    EXPECT_EQ(second.corrupt, 0u);
    EXPECT_EQ(second.frames_truncated, 0u);
}

TEST(ScrubberTest, ScrubsAttachedReplicaStores)
{
    MemStorage device(SlotStore::required_size(kSlots, kState));
    SlotStore store = SlotStore::format(device, kSlots, kState);
    publish(store, device, 1);

    ReplicaStore replica;
    const std::vector<std::uint8_t> held = image_for(7);
    replica.store_chunk(7, 70, held.size(), 0, held.data(), held.size());
    ASSERT_TRUE(replica.seal(7, crc32c(held.data(), held.size())));

    Scrubber scrubber(store);
    scrubber.add_replica_store(&replica);
    const ScrubReport report = scrubber.scrub_once();
    // 1 newest local payload + 1 replica version, both healthy.
    EXPECT_EQ(report.scanned, 2u);
    EXPECT_EQ(report.replica_dropped, 0u);
    EXPECT_TRUE(replica.newest_complete().has_value());
}

TEST(ScrubberTest, BackgroundThreadDetectsAndRepairsRot)
{
    MemStorage device(SlotStore::required_size(kSlots, kState));
    SlotStore store = SlotStore::format(device, kSlots, kState);
    publish(store, device, 1);
    const std::vector<std::uint8_t> newest = publish(store, device, 2);

    Scrubber::Options options;
    options.interval = 0.001;
    Scrubber scrubber(store, options);
    scrubber.set_live_state_provider(
        [&newest](std::uint64_t counter, std::vector<std::uint8_t>* out) {
            if (counter != 2) {
                return false;
            }
            *out = newest;
            return true;
        });
    scrubber.start();
    scrubber.start();  // idempotent
    inject_rot(store, device, 2);
    // Bounded wait for the background loop to find and heal the rot.
    for (int i = 0; i < 2000; ++i) {
        if (scrubber.totals().repaired >= 1) {
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    scrubber.stop();
    scrubber.stop();  // idempotent
    const ScrubReport totals = scrubber.totals();
    EXPECT_GE(totals.corrupt, 1u);
    EXPECT_GE(totals.repaired, 1u);
    EXPECT_FALSE(store.is_quarantined(2 % kSlots));
}

// The full heal cycle under the persistence sanitizer: quarantine
// lifts the slot's lost-update protection, the salvage write follows
// write→persist→fence, and release re-arms — all without a violation.
TEST(ScrubberTest, RepairPathIsPsanClean)
{
    psan::Runtime::global().set_trap(psan::Runtime::Trap::kCollect);
    psan::Runtime::global().take_violations();

    CrashSimStorage inner(SlotStore::required_size(kSlots, kState),
                          StorageKind::kPmemClwb, 1);
    PsanStorage device(inner);
    SlotStore store = SlotStore::format(device, kSlots, kState);
    publish(store, device, 1);
    const std::vector<std::uint8_t> newest = publish(store, device, 2);
    // Rot through the RAW device: the adversary does not run psan.
    const Bytes off = store.slot_offset(2 % kSlots) + 11;
    std::uint8_t byte = 0;
    PCCHECK_MUST(inner.read(off, &byte, 1));
    byte ^= 0x20;
    PCCHECK_MUST(inner.write(off, &byte, 1));
    PCCHECK_MUST(inner.persist(off, 1));
    PCCHECK_MUST(inner.fence());

    Scrubber scrubber(store);
    scrubber.set_live_state_provider(
        [&newest](std::uint64_t counter, std::vector<std::uint8_t>* out) {
            if (counter != 2) {
                return false;
            }
            *out = newest;
            return true;
        });
    const ScrubReport report = scrubber.scrub_once();
    EXPECT_EQ(report.repaired, 1u);
    EXPECT_FALSE(store.is_quarantined(2 % kSlots));

    const auto violations = psan::Runtime::global().take_violations();
    for (const auto& v : violations) {
        ADD_FAILURE() << "psan violation during repair: " << v.to_string();
    }
}

}  // namespace
}  // namespace pccheck
