/**
 * @file
 * Tests for the PCcheck core: on-device slot layout and pointer
 * records, the Listing-1 commit protocol, the parallel persist engine,
 * the orchestrator, recovery, the tuner, and distributed coordination.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/concurrent_commit.h"
#include "core/distributed.h"
#include "core/free_slot_queue.h"
#include "core/orchestrator.h"
#include "core/persist_engine.h"
#include "core/recovery.h"
#include "core/slot_store.h"
#include "core/tuner.h"
#include "net/network.h"
#include "storage/crash_sim.h"
#include "storage/file_storage.h"
#include "storage/mem_storage.h"
#include "storage/throttled_storage.h"
#include "trainsim/training_state.h"
#include "util/check.h"
#include "util/crc32.h"

namespace pccheck {
namespace {

std::vector<std::uint8_t>
pattern(Bytes len, std::uint8_t seed)
{
    std::vector<std::uint8_t> data(len);
    for (Bytes i = 0; i < len; ++i) {
        data[i] = static_cast<std::uint8_t>(seed * 31 + i);
    }
    return data;
}

// ---------------------------------------------------------------- SlotStore

TEST(SlotStoreTest, FormatAndOpenRoundTrip)
{
    MemStorage device(SlotStore::required_size(3, 8192));
    SlotStore store = SlotStore::format(device, 3, 8192);
    EXPECT_EQ(store.slot_count(), 3u);
    EXPECT_EQ(store.slot_size(), 8192u);
    SlotStore reopened = SlotStore::open(device);
    EXPECT_EQ(reopened.slot_count(), 3u);
    EXPECT_EQ(reopened.slot_size(), 8192u);
}

TEST(SlotStoreTest, OpenUnformattedThrows)
{
    MemStorage device(1 * kMiB);
    EXPECT_THROW(SlotStore::open(device), FatalError);
}

TEST(SlotStoreTest, FormatTooSmallDeviceThrows)
{
    MemStorage device(1024);
    EXPECT_THROW(SlotStore::format(device, 4, 1 * kMiB), FatalError);
}

TEST(SlotStoreTest, SlotsDoNotOverlap)
{
    MemStorage device(SlotStore::required_size(3, 5000));
    SlotStore store = SlotStore::format(device, 3, 5000);
    const auto a = pattern(5000, 1);
    const auto b = pattern(5000, 2);
    PCCHECK_MUST(store.write_slot(0, 0, a.data(), a.size()));
    PCCHECK_MUST(store.write_slot(1, 0, b.data(), b.size()));
    std::vector<std::uint8_t> out(5000);
    PCCHECK_MUST(store.read_slot(0, 0, out.data(), out.size()));
    EXPECT_EQ(out, a);
    PCCHECK_MUST(store.read_slot(1, 0, out.data(), out.size()));
    EXPECT_EQ(out, b);
}

TEST(SlotStoreTest, NoPointerAfterFormat)
{
    MemStorage device(SlotStore::required_size(2, 4096));
    SlotStore store = SlotStore::format(device, 2, 4096);
    EXPECT_FALSE(store.recover_pointer().has_value());
}

TEST(SlotStoreTest, PublishAndRecoverPointer)
{
    MemStorage device(SlotStore::required_size(2, 4096));
    SlotStore store = SlotStore::format(device, 2, 4096);
    const auto data = pattern(4096, 3);
    PCCHECK_MUST(store.write_slot(1, 0, data.data(), data.size()));
    PCCHECK_MUST(store.persist_slot_range(1, 0, data.size()));
    PCCHECK_MUST(store.device().fence());
    const std::uint32_t crc = crc32c(data.data(), data.size());
    PCCHECK_MUST(store.publish_pointer({7, 1, 4096, 123, crc}));

    const auto recovered = store.recover_pointer();
    ASSERT_TRUE(recovered.has_value());
    EXPECT_EQ(recovered->counter, 7u);
    EXPECT_EQ(recovered->slot, 1u);
    EXPECT_EQ(recovered->iteration, 123u);
    EXPECT_EQ(recovered->data_crc, crc);
}

TEST(SlotStoreTest, NewerRecordWins)
{
    MemStorage device(SlotStore::required_size(3, 4096));
    SlotStore store = SlotStore::format(device, 3, 4096);
    const auto a = pattern(4096, 4);
    const auto b = pattern(4096, 5);
    PCCHECK_MUST(store.write_slot(0, 0, a.data(), a.size()));
    PCCHECK_MUST(store.write_slot(1, 0, b.data(), b.size()));
    PCCHECK_MUST(store.publish_pointer({1, 0, 4096, 10, crc32c(a.data(), a.size())}));
    PCCHECK_MUST(store.publish_pointer({2, 1, 4096, 20, crc32c(b.data(), b.size())}));
    const auto recovered = store.recover_pointer();
    ASSERT_TRUE(recovered.has_value());
    EXPECT_EQ(recovered->counter, 2u);
    EXPECT_EQ(recovered->iteration, 20u);
}

TEST(SlotStoreTest, FallsBackWhenNewerDataCorrupt)
{
    MemStorage device(SlotStore::required_size(3, 4096));
    SlotStore store = SlotStore::format(device, 3, 4096);
    const auto a = pattern(4096, 6);
    const auto b = pattern(4096, 7);
    PCCHECK_MUST(store.write_slot(0, 0, a.data(), a.size()));
    PCCHECK_MUST(store.write_slot(1, 0, b.data(), b.size()));
    PCCHECK_MUST(store.publish_pointer({1, 0, 4096, 10, crc32c(a.data(), a.size())}));
    PCCHECK_MUST(store.publish_pointer({2, 1, 4096, 20, crc32c(b.data(), b.size())}));
    // Corrupt the newer checkpoint's data (slot recycled / torn).
    const auto garbage = pattern(100, 99);
    PCCHECK_MUST(store.write_slot(1, 50, garbage.data(), garbage.size()));
    const auto recovered = store.recover_pointer();
    ASSERT_TRUE(recovered.has_value());
    EXPECT_EQ(recovered->counter, 1u);  // fell back to the older one
}

// ---------------------------------------------------------- ConcurrentCommit

std::unique_ptr<MemStorage>
make_device(std::uint32_t slots, Bytes slot_size)
{
    return std::make_unique<MemStorage>(
        SlotStore::required_size(slots, slot_size));
}

TEST(ConcurrentCommitTest, SequentialCommits)
{
    auto device = make_device(3, 4096);
    SlotStore store = SlotStore::format(*device, 3, 4096);
    ConcurrentCommit commit(store);
    const auto data = pattern(4096, 1);
    for (std::uint64_t i = 1; i <= 10; ++i) {
        const CheckpointTicket ticket = commit.begin();
        PCCHECK_MUST(store.write_slot(ticket.slot, 0, data.data(), data.size()));
        PCCHECK_MUST(store.persist_slot_range(ticket.slot, 0, data.size()));
        PCCHECK_MUST(store.device().fence());
        const auto result = commit.commit(
            ticket, data.size(), i, crc32c(data.data(), data.size()));
        EXPECT_TRUE(result.won);
    }
    EXPECT_EQ(commit.commits_won(), 10u);
    EXPECT_EQ(commit.commits_superseded(), 0u);
    const auto recovered = store.recover_pointer();
    ASSERT_TRUE(recovered.has_value());
    EXPECT_EQ(recovered->iteration, 10u);
}

TEST(ConcurrentCommitTest, TicketsAreOrderedAndSlotsDistinct)
{
    auto device = make_device(4, 1024);
    SlotStore store = SlotStore::format(*device, 4, 1024);
    ConcurrentCommit commit(store);
    const CheckpointTicket a = commit.begin();
    const CheckpointTicket b = commit.begin();
    const CheckpointTicket c = commit.begin();
    EXPECT_LT(a.counter, b.counter);
    EXPECT_LT(b.counter, c.counter);
    EXPECT_NE(a.slot, b.slot);
    EXPECT_NE(b.slot, c.slot);
    EXPECT_NE(a.slot, c.slot);
    commit.abort(a);
    commit.abort(b);
    commit.abort(c);
}

TEST(ConcurrentCommitTest, TryBeginFailsWhenSlotsExhausted)
{
    auto device = make_device(2, 1024);
    SlotStore store = SlotStore::format(*device, 2, 1024);
    ConcurrentCommit commit(store);
    CheckpointTicket a;
    CheckpointTicket b;
    CheckpointTicket c;
    EXPECT_TRUE(commit.try_begin(&a));
    EXPECT_TRUE(commit.try_begin(&b));
    EXPECT_FALSE(commit.try_begin(&c));
    commit.abort(a);
    EXPECT_TRUE(commit.try_begin(&c));
    commit.abort(b);
    commit.abort(c);
}

TEST(ConcurrentCommitTest, OutOfOrderCommitSupersedes)
{
    auto device = make_device(3, 1024);
    SlotStore store = SlotStore::format(*device, 3, 1024);
    ConcurrentCommit commit(store);
    const auto data = pattern(1024, 2);
    const std::uint32_t crc = crc32c(data.data(), data.size());

    const CheckpointTicket older = commit.begin();
    const CheckpointTicket newer = commit.begin();
    PCCHECK_MUST(store.write_slot(older.slot, 0, data.data(), data.size()));
    PCCHECK_MUST(store.write_slot(newer.slot, 0, data.data(), data.size()));
    PCCHECK_MUST(store.persist_slot_range(older.slot, 0, data.size()));
    PCCHECK_MUST(store.persist_slot_range(newer.slot, 0, data.size()));
    PCCHECK_MUST(store.device().fence());

    // The newer one lands first; the older must recognize it has been
    // superseded and recycle its own slot (Listing 1 lines 29-31).
    EXPECT_TRUE(commit.commit(newer, data.size(), 2, crc).won);
    const auto result = commit.commit(older, data.size(), 1, crc);
    EXPECT_FALSE(result.won);
    EXPECT_EQ(result.freed_slot, older.slot);

    const auto recovered = store.recover_pointer();
    ASSERT_TRUE(recovered.has_value());
    EXPECT_EQ(recovered->iteration, 2u);
    EXPECT_EQ(commit.latest_counter(), newer.counter);
}

TEST(ConcurrentCommitTest, AdoptsExistingCheckpointOnReopen)
{
    auto device = make_device(3, 1024);
    const auto data = pattern(1024, 3);
    {
        SlotStore store = SlotStore::format(*device, 3, 1024);
        ConcurrentCommit commit(store);
        const CheckpointTicket ticket = commit.begin();
        PCCHECK_MUST(store.write_slot(ticket.slot, 0, data.data(), data.size()));
        PCCHECK_MUST(store.persist_slot_range(ticket.slot, 0, data.size()));
        PCCHECK_MUST(store.device().fence());
        commit.commit(ticket, data.size(), 42,
                      crc32c(data.data(), data.size()));
    }
    // Reopen (recovery): the latest checkpoint's slot is reserved.
    SlotStore store = SlotStore::open(*device);
    ConcurrentCommit commit(store);
    EXPECT_GT(commit.latest_counter(), 0u);
    // Two of the three slots are free; the latest one is not.
    CheckpointTicket a;
    CheckpointTicket b;
    CheckpointTicket c;
    EXPECT_TRUE(commit.try_begin(&a));
    EXPECT_TRUE(commit.try_begin(&b));
    EXPECT_FALSE(commit.try_begin(&c));
    commit.abort(a);
    commit.abort(b);
}

/** Concurrent commit stress: counters never regress, recovery valid. */
TEST(ConcurrentCommitTest, ParallelWritersMonotonicPointer)
{
    constexpr int kWriters = 4;
    constexpr int kPerWriter = 50;
    auto device = make_device(kWriters + 1, 4096);
    SlotStore store = SlotStore::format(*device, kWriters + 1, 4096);
    ConcurrentCommit commit(store);

    std::atomic<std::uint64_t> max_seen{0};
    std::vector<std::thread> threads;
    for (int writer = 0; writer < kWriters; ++writer) {
        threads.emplace_back([&, writer] {
            for (int i = 0; i < kPerWriter; ++i) {
                const CheckpointTicket ticket = commit.begin();
                std::vector<std::uint8_t> data(4096);
                TrainingState::stamp_buffer(data.data(), data.size(),
                                            ticket.counter);
                PCCHECK_MUST(store.write_slot(ticket.slot, 0,
                                              data.data(),
                                              data.size()));
                PCCHECK_MUST(store.persist_slot_range(ticket.slot, 0, data.size()));
                PCCHECK_MUST(store.device().fence());
                commit.commit(ticket, data.size(), ticket.counter,
                              crc32c(data.data(), data.size()));
                (void)writer;
                // CHECK_ADDR must be monotonically increasing.
                std::uint64_t seen = commit.latest_counter();
                std::uint64_t prev = max_seen.load();
                while (seen > prev &&
                       !max_seen.compare_exchange_weak(prev, seen)) {
                }
            }
        });
    }
    for (auto& thread : threads) {
        thread.join();
    }
    EXPECT_EQ(commit.commits_won() + commit.commits_superseded(),
              static_cast<std::uint64_t>(kWriters * kPerWriter));
    // The final pointer is valid and stamped with its own counter.
    const auto recovered = store.recover_pointer();
    ASSERT_TRUE(recovered.has_value());
    std::vector<std::uint8_t> data(recovered->data_len);
    PCCHECK_MUST(store.read_slot(recovered->slot, 0, data.data(), data.size()));
    const auto stamped =
        TrainingState::verify_buffer(data.data(), data.size());
    ASSERT_TRUE(stamped.has_value());
    EXPECT_EQ(*stamped, recovered->counter);
    EXPECT_EQ(recovered->counter, commit.latest_counter());
}

// -------------------------------------------------------------- crash tests

/**
 * DESIGN.md I1/I2: run concurrent checkpoints against the adversarial
 * crash-sim device and crash at random points; recovery must always
 * find a valid checkpoint no older than the last acknowledged commit.
 */
TEST(CrashPropertyTest, RecoveryAlwaysFindsValidCheckpoint)
{
    constexpr Bytes kSize = 64 * 1024;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        CrashSimStorage device(SlotStore::required_size(3, kSize),
                               StorageKind::kPmemNt, seed, 0.5);
        SlotStore store = SlotStore::format(device, 3, kSize);
        ConcurrentCommit commit(store);
        Rng rng(seed * 1000);
        const int crash_after = 1 + static_cast<int>(rng.next_below(8));
        std::uint64_t last_acked = 0;
        for (int i = 1; i <= crash_after; ++i) {
            const CheckpointTicket ticket = commit.begin();
            std::vector<std::uint8_t> data(kSize);
            TrainingState::stamp_buffer(data.data(), data.size(),
                                        ticket.counter);
            PCCHECK_MUST(store.write_slot(ticket.slot, 0, data.data(), data.size()));
            PCCHECK_MUST(store.persist_slot_range(ticket.slot, 0, data.size()));
            PCCHECK_MUST(store.device().fence());
            if (commit.commit(ticket, data.size(), ticket.counter,
                              crc32c(data.data(), data.size()))
                    .won) {
                last_acked = ticket.counter;
            }
        }
        // Start one more checkpoint and crash mid-write: the torn slot
        // must not confuse recovery.
        const CheckpointTicket torn = commit.begin();
        std::vector<std::uint8_t> half(kSize / 2);
        TrainingState::stamp_buffer(half.data(), half.size(),
                                    torn.counter);
        PCCHECK_MUST(store.write_slot(torn.slot, 0, half.data(), half.size()));
        device.crash();

        SlotStore reopened = SlotStore::open(device);
        const auto recovered = reopened.recover_pointer();
        ASSERT_TRUE(recovered.has_value()) << "seed " << seed;
        EXPECT_GE(recovered->counter, last_acked) << "seed " << seed;
        std::vector<std::uint8_t> data(recovered->data_len);
        PCCHECK_MUST(reopened.read_slot(recovered->slot, 0, data.data(), data.size()));
        const auto stamped =
            TrainingState::verify_buffer(data.data(), data.size());
        ASSERT_TRUE(stamped.has_value()) << "seed " << seed;
        EXPECT_EQ(*stamped, recovered->counter) << "seed " << seed;
    }
}

/** Crash before any fence: no checkpoint should be recovered at all
 *  (rather than a torn one). */
TEST(CrashPropertyTest, CrashBeforeFirstCommitRecoversNothing)
{
    constexpr Bytes kSize = 16 * 1024;
    CrashSimStorage device(SlotStore::required_size(2, kSize),
                           StorageKind::kPmemNt, 7, 0.5);
    SlotStore store = SlotStore::format(device, 2, kSize);
    ConcurrentCommit commit(store);
    const CheckpointTicket ticket = commit.begin();
    std::vector<std::uint8_t> data(kSize);
    TrainingState::stamp_buffer(data.data(), data.size(), 1);
    PCCHECK_MUST(store.write_slot(ticket.slot, 0, data.data(), data.size()));
    // Crash with the data written but never persisted/fenced and the
    // pointer never published.
    device.crash();
    SlotStore reopened = SlotStore::open(device);
    EXPECT_FALSE(reopened.recover_pointer().has_value());
}

// ------------------------------------------------------------ PersistEngine

TEST(PersistEngineTest, BlockingPersistWritesAllData)
{
    auto device = make_device(3, 64 * 1024);
    SlotStore store = SlotStore::format(*device, 3, 64 * 1024);
    PersistEngineConfig blocking_config;
    blocking_config.writer_threads = 4;
    PersistEngine engine(store, blocking_config);
    const auto data = pattern(64 * 1024, 9);
    ASSERT_TRUE(
        engine.persist_range(1, 0, data.data(), data.size(), 3).ok());
    std::vector<std::uint8_t> out(64 * 1024);
    PCCHECK_MUST(store.read_slot(1, 0, out.data(), out.size()));
    EXPECT_EQ(out, data);
}

TEST(PersistEngineTest, AsyncPersistInvokesDone)
{
    auto device = make_device(3, 64 * 1024);
    SlotStore store = SlotStore::format(*device, 3, 64 * 1024);
    PersistEngineConfig async_config;
    async_config.writer_threads = 4;
    PersistEngine engine(store, async_config);
    const auto data = pattern(64 * 1024, 10);
    std::atomic<bool> done{false};
    engine.persist_range_async(0, 0, data.data(), data.size(), 3,
                               [&done](StorageStatus status) {
                                   EXPECT_TRUE(status.ok());
                                   done.store(true);
                               });
    while (!done.load()) {
        std::this_thread::yield();
    }
    std::vector<std::uint8_t> out(64 * 1024);
    PCCHECK_MUST(store.read_slot(0, 0, out.data(), out.size()));
    EXPECT_EQ(out, data);
}

TEST(PersistEngineTest, PerWriterCeilingSlowsSingleWriter)
{
    auto device = make_device(2, 256 * 1024);
    SlotStore store = SlotStore::format(*device, 2, 256 * 1024);
    PersistEngineConfig config;
    config.writer_threads = 4;
    config.per_writer_bytes_per_sec = 10e6;  // 10 MB/s per thread
    PersistEngine engine(store, config);
    const auto data = pattern(256 * 1024, 11);

    Stopwatch one_watch;
    ASSERT_TRUE(
        engine.persist_range(0, 0, data.data(), data.size(), 1).ok());
    const Seconds one = one_watch.elapsed();  // ~26 ms

    Stopwatch four_watch;
    ASSERT_TRUE(
        engine.persist_range(0, 0, data.data(), data.size(), 4).ok());
    const Seconds four = four_watch.elapsed();  // ~6.5 ms

    EXPECT_GT(one, four * 2.0);
}

TEST(PersistEngineTest, PmemPathFencesEachStripe)
{
    CrashSimStorage* crash_device = nullptr;
    auto owned = std::make_unique<CrashSimStorage>(
        SlotStore::required_size(2, 16 * 1024), StorageKind::kPmemNt, 3,
        0.0);
    crash_device = owned.get();
    SlotStore store = SlotStore::format(*owned, 2, 16 * 1024);
    PersistEngineConfig pmem_config;
    pmem_config.writer_threads = 2;
    PersistEngine engine(store, pmem_config);
    const auto data = pattern(16 * 1024, 12);
    ASSERT_TRUE(
        engine.persist_range(0, 0, data.data(), data.size(), 2).ok());
    // Everything the engine wrote must already be durable.
    crash_device->crash();
    std::vector<std::uint8_t> out(16 * 1024);
    PCCHECK_MUST(store.read_slot(0, 0, out.data(), out.size()));
    EXPECT_EQ(out, data);
}

// -------------------------------------------------------------- Orchestrator

struct OrchestratorFixture {
    OrchestratorFixture(Bytes state_bytes, const PCcheckConfig& config)
        : gpu(make_gpu_config(state_bytes)),
          state(gpu, state_bytes),
          device(SlotStore::required_size(
              static_cast<std::uint32_t>(config.concurrent_checkpoints + 1),
              state_bytes)),
          checkpointer(state, device, config)
    {
    }

    static GpuConfig
    make_gpu_config(Bytes state_bytes)
    {
        GpuConfig config;
        config.memory_bytes = state_bytes + kMiB;
        config.pcie_bytes_per_sec = 0;
        return config;
    }

    SimGpu gpu;
    TrainingState state;
    MemStorage device;
    PCcheckCheckpointer checkpointer;
};

TEST(OrchestratorTest, SingleCheckpointPersists)
{
    PCcheckConfig config;
    config.concurrent_checkpoints = 2;
    OrchestratorFixture fixture(64 * 1024, config);
    fixture.state.stamp(5);
    fixture.checkpointer.request_checkpoint(5);
    fixture.checkpointer.finish();
    const auto stats = fixture.checkpointer.stats();
    EXPECT_EQ(stats.requested, 1u);
    EXPECT_EQ(stats.completed, 1u);

    std::vector<std::uint8_t> buffer;
    const auto recovered = recover_to_buffer(fixture.device, &buffer);
    ASSERT_TRUE(recovered.has_value());
    EXPECT_EQ(recovered->iteration, 5u);
    EXPECT_EQ(TrainingState::verify_buffer(buffer.data(), buffer.size()),
              std::make_optional<std::uint64_t>(5));
}

TEST(OrchestratorTest, ManySequentialCheckpointsAllComplete)
{
    PCcheckConfig config;
    config.concurrent_checkpoints = 3;
    config.writers_per_checkpoint = 2;
    OrchestratorFixture fixture(32 * 1024, config);
    for (std::uint64_t i = 1; i <= 20; ++i) {
        fixture.checkpointer.before_update(i);
        fixture.state.stamp(i);
        fixture.checkpointer.request_checkpoint(i);
    }
    fixture.checkpointer.finish();
    const auto stats = fixture.checkpointer.stats();
    EXPECT_EQ(stats.requested, 20u);
    EXPECT_EQ(stats.completed, 20u);
    std::vector<std::uint8_t> buffer;
    const auto recovered = recover_to_buffer(fixture.device, &buffer);
    ASSERT_TRUE(recovered.has_value());
    EXPECT_EQ(recovered->iteration, 20u);
}

TEST(OrchestratorTest, PipelinedChunksProduceConsistentCheckpoint)
{
    PCcheckConfig config;
    config.concurrent_checkpoints = 2;
    config.chunk_bytes = 16 * 1024;  // 8 chunks of the 128 KiB state
    config.dram_bytes = 48 * 1024;   // only 3 staging buffers
    OrchestratorFixture fixture(128 * 1024, config);
    for (std::uint64_t i = 1; i <= 10; ++i) {
        fixture.checkpointer.before_update(i);
        fixture.state.stamp(i);
        fixture.checkpointer.request_checkpoint(i);
    }
    fixture.checkpointer.finish();
    std::vector<std::uint8_t> buffer;
    const auto recovered = recover_to_buffer(fixture.device, &buffer);
    ASSERT_TRUE(recovered.has_value());
    const auto stamped =
        TrainingState::verify_buffer(buffer.data(), buffer.size());
    ASSERT_TRUE(stamped.has_value());
    EXPECT_EQ(*stamped, recovered->iteration);
}

TEST(OrchestratorTest, BeforeUpdateWaitsForSnapshot)
{
    // Throttle PCIe so the snapshot takes a visible amount of time.
    GpuConfig gpu_config;
    gpu_config.memory_bytes = 2 * kMiB;
    gpu_config.pcie_bytes_per_sec = 10e6;  // 256 KiB ≈ 26 ms
    SimGpu gpu(gpu_config);
    TrainingState state(gpu, 256 * 1024);
    MemStorage device(SlotStore::required_size(3, 256 * 1024));
    PCcheckConfig config;
    config.concurrent_checkpoints = 2;
    PCcheckCheckpointer checkpointer(state, device, config);

    state.stamp(1);
    checkpointer.request_checkpoint(1);
    Stopwatch watch;
    checkpointer.before_update(2);  // must wait for the GPU→DRAM copy
    EXPECT_GE(watch.elapsed(), 0.01);
    checkpointer.finish();
    const auto stats = checkpointer.stats();
    EXPECT_GE(stats.stall_time, 0.01);
}

TEST(OrchestratorTest, InvalidConfigRejected)
{
    GpuConfig gpu_config;
    gpu_config.memory_bytes = kMiB;
    SimGpu gpu(gpu_config);
    TrainingState state(gpu, 4096);
    MemStorage device(SlotStore::required_size(2, 4096));
    PCcheckConfig config;
    config.concurrent_checkpoints = 0;
    EXPECT_THROW(PCcheckCheckpointer(state, device, config), FatalError);
}

TEST(OrchestratorTest, QueueKindsAllWork)
{
    for (const SlotQueueKind kind :
         {SlotQueueKind::kVyukov, SlotQueueKind::kMichaelScott,
          SlotQueueKind::kMutex}) {
        PCcheckConfig config;
        config.concurrent_checkpoints = 2;
        config.queue_kind = kind;
        OrchestratorFixture fixture(16 * 1024, config);
        for (std::uint64_t i = 1; i <= 5; ++i) {
            fixture.checkpointer.before_update(i);
            fixture.state.stamp(i);
            fixture.checkpointer.request_checkpoint(i);
        }
        fixture.checkpointer.finish();
        EXPECT_EQ(fixture.checkpointer.stats().completed, 5u);
    }
}

TEST(OrchestratorTest, ReattachPreservesExistingCheckpoint)
{
    // Durability across restarts (I1): constructing a new orchestrator
    // on a device that already holds checkpoints must NOT wipe them —
    // a crash before the first new checkpoint still recovers.
    MemStorage device(SlotStore::required_size(3, 32 * 1024));
    {
        PCcheckConfig config;
        config.concurrent_checkpoints = 2;
        OrchestratorFixture fixture(32 * 1024, config);
        // Use a shared device instead of the fixture's.
        PCcheckCheckpointer checkpointer(fixture.state, device, config);
        fixture.state.stamp(9);
        checkpointer.request_checkpoint(9);
        checkpointer.finish();
    }
    {
        // "Restart": same geometry — reopen in place.
        GpuConfig gpu_config;
        gpu_config.memory_bytes = 2 * kMiB;
        gpu_config.pcie_bytes_per_sec = 0;
        SimGpu gpu(gpu_config);
        TrainingState state(gpu, 32 * 1024);
        PCcheckConfig config;
        config.concurrent_checkpoints = 2;
        PCcheckCheckpointer checkpointer(state, device, config);
        std::vector<std::uint8_t> buffer;
        const auto recovered = recover_to_buffer(device, &buffer);
        ASSERT_TRUE(recovered.has_value());
        EXPECT_EQ(recovered->iteration, 9u);
    }
}

TEST(OrchestratorTest, GeometryChangeSalvagesCheckpoint)
{
    // Restarting with a different N (and hence slot count) must
    // migrate the latest checkpoint into the new layout.
    MemStorage device(SlotStore::required_size(5, 32 * 1024));
    GpuConfig gpu_config;
    gpu_config.memory_bytes = 2 * kMiB;
    gpu_config.pcie_bytes_per_sec = 0;
    SimGpu gpu(gpu_config);
    TrainingState state(gpu, 32 * 1024);
    {
        PCcheckConfig config;
        config.concurrent_checkpoints = 2;  // 3 slots
        PCcheckCheckpointer checkpointer(state, device, config);
        state.stamp(14);
        checkpointer.request_checkpoint(14);
        checkpointer.finish();
    }
    {
        PCcheckConfig config;
        config.concurrent_checkpoints = 4;  // 5 slots: reformat
        PCcheckCheckpointer checkpointer(state, device, config);
        std::vector<std::uint8_t> buffer;
        const auto recovered = recover_to_buffer(device, &buffer);
        ASSERT_TRUE(recovered.has_value());
        EXPECT_EQ(recovered->iteration, 14u);
        EXPECT_EQ(
            TrainingState::verify_buffer(buffer.data(), buffer.size()),
            std::make_optional<std::uint64_t>(14));
    }
}

// ------------------------------------------------------------------ Recovery

TEST(RecoveryTest, RoundTripThroughRealFile)
{
    const std::string path = "/tmp/pccheck_recovery_test.bin";
    const Bytes kSize = 64 * 1024;
    GpuConfig gpu_config;
    gpu_config.memory_bytes = 2 * kMiB;
    gpu_config.pcie_bytes_per_sec = 0;
    {
        SimGpu gpu(gpu_config);
        TrainingState state(gpu, kSize);
        FileStorage device(path, SlotStore::required_size(3, kSize));
        PCcheckConfig config;
        config.concurrent_checkpoints = 2;
        PCcheckCheckpointer checkpointer(state, device, config);
        for (std::uint64_t i = 1; i <= 7; ++i) {
            checkpointer.before_update(i);
            state.stamp(i);
            checkpointer.request_checkpoint(i);
        }
        checkpointer.finish();
    }
    // "Process restart": reopen the file and recover into a fresh GPU.
    {
        SimGpu gpu(gpu_config);
        TrainingState state(gpu, kSize);
        FileStorage device(path, SlotStore::required_size(3, kSize));
        const auto result = recover_into_state(device, state);
        ASSERT_TRUE(result.has_value());
        EXPECT_EQ(result->iteration, 7u);
        EXPECT_EQ(state.iteration(), 7u);
        const auto stamped = TrainingState::verify_buffer(
            gpu.device_data(state.device_ptr()), state.size());
        EXPECT_EQ(stamped, std::make_optional<std::uint64_t>(7));
    }
    std::remove(path.c_str());
}

TEST(RecoveryTest, NoCheckpointReturnsNullopt)
{
    MemStorage device(SlotStore::required_size(2, 4096));
    SlotStore::format(device, 2, 4096);
    std::vector<std::uint8_t> buffer;
    EXPECT_FALSE(recover_to_buffer(device, &buffer).has_value());
}

// --------------------------------------------------------------------- Tuner

TEST(TunerTest, MinIntervalFormula)
{
    // f* = ceil(Tw / (N q t)): Tw=2s, N=2, q=1.05, t=0.1 → ceil(9.52)=10.
    EXPECT_EQ(min_checkpoint_interval(2.0, 2, 1.05, 0.1), 10u);
    // Tiny Tw → interval 1.
    EXPECT_EQ(min_checkpoint_interval(0.0, 1, 1.05, 0.1), 1u);
}

TEST(TunerTest, OptimizePrefersConcurrency)
{
    const Bytes kSize = 128 * 1024;
    GpuConfig gpu_config;
    gpu_config.memory_bytes = 2 * kMiB;
    gpu_config.pcie_bytes_per_sec = 0;
    SimGpu gpu(gpu_config);
    TrainingState state(gpu, kSize);
    // Slow persist channel so checkpoints overlap: concurrency helps.
    ThrottledStorage device(
        std::make_unique<MemStorage>(SlotStore::required_size(5, kSize)),
        0, 20e6, 0);

    PCcheckConfig base;
    base.writers_per_checkpoint = 2;
    Tuner tuner(base);
    TunerConstraints constraints;
    constraints.storage_budget = SlotStore::required_size(5, kSize);
    constraints.max_overhead = 1.05;
    const TunerResult result =
        tuner.optimize(state, device, constraints, /*iteration_time=*/0.002,
                       /*probes_per_n=*/3);
    EXPECT_GE(result.concurrent_checkpoints, 2);
    EXPECT_GE(result.checkpoint_interval, 1u);
    EXPECT_FALSE(result.samples.empty());
    EXPECT_GT(result.tw, 0.0);
}

// --------------------------------------------------------------- Distributed

TEST(DistributedTest, AllRanksAgreeOnMinimum)
{
    NetworkConfig net_config;
    net_config.nodes = 4;
    net_config.nic_bytes_per_sec = 0;
    net_config.latency = 0;
    SimNetwork network(net_config);
    std::vector<std::uint64_t> agreed(4, 0);
    std::vector<std::thread> threads;
    for (int rank = 0; rank < 4; ++rank) {
        threads.emplace_back([&, rank] {
            DistributedCoordinator coordinator(network, rank, 4);
            // Ranks announce different IDs; all must agree on the min.
            agreed[static_cast<std::size_t>(rank)] =
                coordinator.coordinate(100 + static_cast<std::uint64_t>(
                                                 rank));
        });
    }
    for (auto& thread : threads) {
        thread.join();
    }
    for (int rank = 0; rank < 4; ++rank) {
        EXPECT_EQ(agreed[static_cast<std::size_t>(rank)], 100u);
    }
}

TEST(DistributedTest, SingleNodeIsTrivial)
{
    NetworkConfig net_config;
    net_config.nodes = 1;
    SimNetwork network(net_config);
    DistributedCoordinator coordinator(network, 0, 1);
    EXPECT_EQ(coordinator.coordinate(55), 55u);
    EXPECT_EQ(coordinator.last_consistent(), 55u);
}

TEST(DistributedTest, RepeatedRoundsAdvance)
{
    NetworkConfig net_config;
    net_config.nodes = 2;
    net_config.latency = 0;
    SimNetwork network(net_config);
    std::thread peer([&network] {
        DistributedCoordinator coordinator(network, 1, 2);
        EXPECT_EQ(coordinator.coordinate(10), 10u);
        EXPECT_EQ(coordinator.coordinate(20), 20u);
    });
    DistributedCoordinator coordinator(network, 0, 2);
    EXPECT_EQ(coordinator.coordinate(11), 10u);
    EXPECT_EQ(coordinator.coordinate(21), 20u);
    peer.join();
    EXPECT_EQ(coordinator.last_consistent(), 20u);
}

// ---------------------------------------------------------------------------
// FreeSlotQueue stress: N producers recycling slots against N
// consumers claiming them. The §4.1 invariant under test: a slot is
// never handed out twice concurrently — every dequeued slot is owned
// exclusively until its holder re-enqueues it. Runs under TSan in CI
// (core_test is in the sanitizer regex), so the atomics themselves are
// also race-checked.

class SlotQueueStressTest
    : public ::testing::TestWithParam<SlotQueueKind> {};

TEST_P(SlotQueueStressTest, NoSlotHandedOutTwice)
{
    static constexpr std::uint32_t kSlots = 64;
    static constexpr int kThreads = 4;
    static constexpr int kOpsPerThread = 20'000;

    auto queue = make_slot_queue(GetParam(), kSlots);
    for (std::uint32_t slot = 0; slot < kSlots; ++slot) {
        ASSERT_TRUE(queue->try_enqueue(slot));
    }

    // owned[s] flips 0→1 on dequeue and 1→0 on enqueue; an exchange
    // that sees the wrong prior value is a double-handout (or a
    // re-enqueue of a slot the thread never owned).
    std::vector<std::atomic<int>> owned(kSlots);
    for (auto& flag : owned) {
        flag.store(0);
    }
    std::atomic<int> violations{0};
    std::atomic<std::uint64_t> claims{0};

    // try_enqueue can transiently report "full" while a concurrent
    // dequeuer has claimed a cell but not yet advanced its sequence
    // word, so recycling retries (the production free-slot path backs
    // off the same way when slots are exhausted).
    const auto enqueue_retrying = [&queue](std::uint32_t slot) {
        while (!queue->try_enqueue(slot)) {
            std::this_thread::yield();
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&queue, &owned, &violations, &claims,
                              &enqueue_retrying] {
            std::vector<std::uint32_t> held;
            for (int op = 0; op < kOpsPerThread; ++op) {
                const auto slot = queue->try_dequeue();
                if (slot.has_value()) {
                    ASSERT_LT(*slot, kSlots);
                    if (owned[*slot].exchange(1) != 0) {
                        violations.fetch_add(1);
                    }
                    claims.fetch_add(1);
                    held.push_back(*slot);
                }
                // Recycle in a different order than claimed to shuffle
                // the queue contents across threads.
                if (held.size() > 4 || (!held.empty() && op % 3 == 0)) {
                    const std::uint32_t back = held.back();
                    held.pop_back();
                    if (owned[back].exchange(0) != 1) {
                        violations.fetch_add(1);
                    }
                    enqueue_retrying(back);
                }
            }
            for (const std::uint32_t back : held) {
                if (owned[back].exchange(0) != 1) {
                    violations.fetch_add(1);
                }
                enqueue_retrying(back);
            }
        });
    }
    for (auto& thread : threads) {
        thread.join();
    }

    EXPECT_EQ(violations.load(), 0);
    EXPECT_GT(claims.load(), 0u);
    // Every slot must come back exactly once — drain and count.
    std::vector<bool> seen(kSlots, false);
    for (std::uint32_t i = 0; i < kSlots; ++i) {
        const auto slot = queue->try_dequeue();
        ASSERT_TRUE(slot.has_value()) << "queue lost slot(s): " << i;
        EXPECT_FALSE(seen[*slot]) << "duplicate slot " << *slot;
        seen[*slot] = true;
    }
    EXPECT_FALSE(queue->try_dequeue().has_value());
}

const char*
slot_queue_kind_name(
    const ::testing::TestParamInfo<SlotQueueKind>& info)
{
    switch (info.param) {
        case SlotQueueKind::kVyukov:
            return "Vyukov";
        case SlotQueueKind::kMichaelScott:
            return "MichaelScott";
        default:
            return "Mutex";
    }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SlotQueueStressTest,
                         ::testing::Values(SlotQueueKind::kVyukov,
                                           SlotQueueKind::kMichaelScott,
                                           SlotQueueKind::kMutex),
                         slot_queue_kind_name);

}  // namespace
}  // namespace pccheck
