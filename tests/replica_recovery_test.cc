/**
 * @file
 * Seeded node-loss sweep for the replica tier's recovery guarantee:
 * at any node_loss point — including mid-replication, mid-persist,
 * mid-commit — a replacement node recovers from surviving peers a
 * checkpoint whose counter is >= the peers' durable-publish watermark,
 * CRC-valid and stamp-verified, and resumes training on it.
 *
 * Mirrors crash_sweep_test.cc: a calibration run measures the
 * fault-op stream (storage ops + net.transfer ops share one
 * injector), each seed picks a loss index inside the armed window,
 * and every failure replays from its printed seed and loss-op index.
 * Runs 64 seeds by default; PCCHECK_REPLICA_SWEEP_SEEDS overrides
 * (CI smoke runs 8 under sanitizers).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/orchestrator.h"
#include "core/recovery.h"
#include "core/slot_store.h"
#include "faults/fault.h"
#include "faults/faulty_storage.h"
#include "net/network.h"
#include "remote/remote_recovery.h"
#include "remote/replica_store.h"
#include "remote/replication.h"
#include "storage/mem_storage.h"
#include "trainsim/models.h"
#include "trainsim/training_loop.h"
#include "util/check.h"
#include "util/rng.h"

namespace pccheck {
namespace {

constexpr Bytes kState = 16 * 1024;
constexpr int kConcurrent = 2;
constexpr int kSlots = kConcurrent + 1;
constexpr std::uint64_t kWarmupIters = 4;
constexpr std::uint64_t kMainIters = 14;
constexpr std::uint64_t kInterval = 2;

GpuConfig
fast_gpu()
{
    GpuConfig config;
    config.memory_bytes = 2 * kMiB;
    config.pcie_bytes_per_sec = 0;
    return config;
}

ScaledModel
tiny_model()
{
    return scale_model(model_by_name("vgg16"),
                       ScaleFactors{600.0, 20000.0});
}

struct SeedRun {
    std::uint64_t ops_after_warmup = 0;
    std::uint64_t ops_total = 0;
    bool lost = false;  ///< the node_loss trigger fired
    /** Latest durable iteration before faults were armed. */
    std::uint64_t warm_iteration = 0;
    /** Surviving peers' view after the run (watermark + stores). */
    std::uint64_t peer_watermark = 0;
    std::unique_ptr<ReplicaStore> store1;
    std::unique_ptr<ReplicaStore> store2;
    std::unique_ptr<SimNetwork> network;
};

/**
 * One full train → node-loss → drain cycle on a 3-node fabric: rank 0
 * trains and checkpoints locally while replicating to in-DRAM stores
 * on nodes 1 and 2 (replicas=2, quorum=1). With @p loss_op == 0 no
 * loss is armed (calibration: measures the shared op stream, which is
 * deterministic for a noise-free plan).
 */
SeedRun
run_training(std::uint64_t seed, std::uint64_t loss_op)
{
    SeedRun out;
    auto injector = std::make_shared<FaultInjector>(seed);
    FaultyStorage device(
        std::make_unique<MemStorage>(
            SlotStore::required_size(kSlots, kState)),
        injector);

    NetworkConfig net;
    net.nodes = 3;
    net.latency = 0;
    out.network = std::make_unique<SimNetwork>(net);
    out.network->set_fault_injector(injector);
    out.store1 = std::make_unique<ReplicaStore>();
    out.store2 = std::make_unique<ReplicaStore>();
    ReplicationConfig rconfig;
    rconfig.replicas = 2;
    rconfig.quorum = 1;
    rconfig.chunk_bytes = 4 * kKiB;
    rconfig.ack_timeout = 0.05;
    ReplicationEngine engine(
        *out.network, 0, rconfig,
        {{1, out.store1.get()}, {2, out.store2.get()}});

    SimGpu gpu(fast_gpu());
    TrainingState state(gpu, kState);
    PCcheckConfig config;
    config.concurrent_checkpoints = kConcurrent;
    config.retry_seed = seed;

    {
        // Warmup with no faults armed: establishes durable, replicated
        // checkpoints so the recovery guarantee is live for the run.
        PCcheckCheckpointer warm(state, device, config);
        warm.attach_replication(&engine);
        TrainingLoop loop(gpu, state, tiny_model());
        loop.run(kWarmupIters, kInterval, warm);
        const auto latest = warm.commit_protocol().latest_pointer();
        PCCHECK_CHECK(latest.has_value());
        out.warm_iteration = latest->iteration;
    }
    out.ops_after_warmup = injector->ops();

    if (loss_op > 0) {
        FaultRule loss;
        loss.point = "*";
        loss.action = FaultAction::kNodeLoss;
        loss.trigger = FaultTrigger::kNthOp;
        loss.nth = loss_op;
        loss.limit = 1;
        FaultyStorage* raw = &device;
        SimNetwork* fabric = out.network.get();
        injector->set_node_loss_handler([raw, fabric] {
            // Atomic full-node failure: rank 0 loses its checkpoint
            // media and its NIC in one step.
            raw->kill();
            fabric->kill_node(0);
        });
        injector->set_plan(FaultPlan().add(loss));
    }

    {
        // The faulted main run. After the loss fires, every local
        // persist fails permanently and every transfer times out, so
        // in-flight attempts abort and the loop drains cleanly — the
        // process-exit analog for a machine that just vanished.
        PCcheckCheckpointer main_cp(state, device, config);
        main_cp.attach_replication(&engine);
        TrainingLoop loop(gpu, state, tiny_model());
        loop.run(kMainIters, kInterval, main_cp, kWarmupIters + 1);
        engine.flush();
    }
    out.ops_total = injector->ops();
    out.lost = injector->node_losses() > 0;
    out.peer_watermark =
        std::max(out.store1->watermark(), out.store2->watermark());
    return out;
}

int
sweep_seeds(int fallback)
{
    const char* env = std::getenv("PCCHECK_REPLICA_SWEEP_SEEDS");
    if (env != nullptr && std::atoi(env) > 0) {
        return std::atoi(env);
    }
    return fallback;
}

TEST(ReplicaRecoverySweepTest, PeersServeQuorumWatermarkAtAnyLossPoint)
{
    // Calibrate the op-stream length once (deterministic workload).
    const SeedRun calib = run_training(24601, 0);
    ASSERT_GT(calib.ops_total, calib.ops_after_warmup);
    ASSERT_FALSE(calib.lost);

    const int seeds = sweep_seeds(64);
    int lost = 0;
    for (int s = 1; s <= seeds; ++s) {
        const std::uint64_t seed = 3000 + static_cast<std::uint64_t>(s);
        Rng pick(seed * 0x9E3779B97F4A7C15ULL);
        const std::uint64_t loss_op =
            calib.ops_after_warmup + 1 +
            pick.next_below(calib.ops_total - calib.ops_after_warmup);
        SeedRun run = run_training(seed, loss_op);
        if (!run.lost) {
            // Only legitimate when this run's op stream ended before
            // the chosen index; anything else is a harness bug.
            ASSERT_GT(loss_op, run.ops_total)
                << "loss trigger silently skipped, seed " << seed;
            continue;
        }
        ++lost;

        // The dead rank's local media is gone (node_loss wipes it to
        // the recovery path's eyes), so a replacement machine joins as
        // node 0 and restores from the surviving peers.
        run.network->revive_node(0);
        const std::vector<ReplicaPeer> peers = {
            {1, run.store1.get()}, {2, run.store2.get()}};
        std::vector<std::uint8_t> buffer;
        const auto restored =
            recover_latest(nullptr, *run.network, 0, peers, &buffer);
        // THE replica-tier guarantee: some surviving peer serves a
        // complete checkpoint at least as new as the quorum-acked
        // durable-publish watermark.
        ASSERT_TRUE(restored.has_value())
            << "no peer could serve a checkpoint, seed " << seed
            << " loss_op " << loss_op;
        EXPECT_TRUE(restored->from_replica);
        EXPECT_GE(restored->result.counter, run.peer_watermark)
            << "restored checkpoint older than the quorum watermark, "
            << "seed " << seed << " loss_op " << loss_op;
        EXPECT_GE(restored->result.iteration, run.warm_iteration)
            << "replicated checkpoint regressed, seed " << seed
            << " loss_op " << loss_op;
        EXPECT_EQ(restored->result.iteration % kInterval, 0u);
        // recover_latest validated the CRC; the stamp check proves the
        // bytes are the iteration's actual training state.
        EXPECT_EQ(
            TrainingState::verify_buffer(buffer.data(), buffer.size()),
            std::make_optional(restored->result.iteration))
            << "seed " << seed << " loss_op " << loss_op;

        // Resume: the replacement trains on fresh media from the
        // restored state and makes durable progress.
        MemStorage fresh(SlotStore::required_size(kSlots, kState));
        SimGpu gpu(fast_gpu());
        TrainingState state(gpu, kState);
        state.gpu().copy_to_device(state.device_ptr(), 0, buffer.data(),
                                   buffer.size(), /*pinned=*/true);
        state.stamp(restored->result.iteration);
        PCcheckConfig config;
        config.concurrent_checkpoints = kConcurrent;
        PCcheckCheckpointer resumed(state, fresh, config);
        TrainingLoop loop(gpu, state, tiny_model());
        loop.run(4, kInterval, resumed, restored->result.iteration + 1);
        const auto after = resumed.commit_protocol().latest_pointer();
        ASSERT_TRUE(after.has_value());
        EXPECT_GT(after->iteration, restored->result.iteration)
            << "resume made no durable progress, seed " << seed;
    }
    // The sweep is meaningless if the triggers never fired.
    EXPECT_GE(lost, seeds * 9 / 10);
}

TEST(ReplicaRecoverySweepTest, CalibrationRunIsCleanAndDeterministic)
{
    const SeedRun a = run_training(4242, 0);
    const SeedRun b = run_training(4242, 0);
    EXPECT_FALSE(a.lost);
    EXPECT_EQ(a.ops_after_warmup, b.ops_after_warmup);
    EXPECT_EQ(a.ops_total, b.ops_total);
    EXPECT_EQ(a.peer_watermark, b.peer_watermark);
    EXPECT_GT(a.peer_watermark, 0u);
}

}  // namespace
}  // namespace pccheck
