/**
 * @file
 * Parameterized sweeps over the persist engine and the throttled
 * storage stack: every (storage kind × writer count × size ×
 * striping) combination must produce byte-exact durable data, and the
 * §4.1 protocol differences (per-stripe fence on PMEM vs single msync
 * on SSD) must leave everything durable by the time persist_range
 * returns.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <tuple>
#include <vector>

#include "core/persist_engine.h"
#include "core/slot_store.h"
#include "storage/crash_sim.h"
#include "storage/mem_storage.h"
#include "storage/throttled_storage.h"
#include "util/check.h"
#include "util/crc32.h"
#include "util/rng.h"

namespace pccheck {
namespace {

std::vector<std::uint8_t>
random_data(Bytes len, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint8_t> data(len);
    for (auto& byte : data) {
        byte = static_cast<std::uint8_t>(rng.next_u64());
    }
    return data;
}

using PersistCase = std::tuple<StorageKind, int, Bytes>;

class PersistEngineProperty
    : public ::testing::TestWithParam<PersistCase> {};

/** Blocking persist: durable and byte-exact for every combination. */
TEST_P(PersistEngineProperty, DurableAndExact)
{
    const auto [kind, writers, size] = GetParam();
    CrashSimStorage device(SlotStore::required_size(2, size), kind,
                           /*seed=*/size, /*eviction=*/0.0);
    SlotStore store = SlotStore::format(device, 2, size);
    PersistEngineConfig config;
    config.writer_threads = 4;
    PersistEngine engine(store, config);
    const auto data = random_data(size, size + writers);

    ASSERT_TRUE(
        engine.persist_range(1, 0, data.data(), data.size(), writers)
            .ok());
    // persist_range's contract: durable on return — even a crash with
    // zero eviction luck must preserve every byte.
    device.crash();
    std::vector<std::uint8_t> out(size);
    PCCHECK_MUST(store.read_slot(1, 0, out.data(), out.size()));
    EXPECT_EQ(out, data);
}

/** Async persist: same durability through the callback. */
TEST_P(PersistEngineProperty, AsyncDurableAndExact)
{
    const auto [kind, writers, size] = GetParam();
    CrashSimStorage device(SlotStore::required_size(2, size), kind,
                           size, 0.0);
    SlotStore store = SlotStore::format(device, 2, size);
    PersistEngineConfig async_config;
    async_config.writer_threads = 4;
    PersistEngine engine(store, async_config);
    const auto data = random_data(size, size * 3 + writers);

    std::atomic<bool> done{false};
    engine.persist_range_async(0, 0, data.data(), data.size(), writers,
                               [&done](StorageStatus status) {
                                   EXPECT_TRUE(status.ok());
                                   done.store(true);
                               });
    while (!done.load()) {
        std::this_thread::yield();
    }
    device.crash();
    std::vector<std::uint8_t> out(size);
    PCCHECK_MUST(store.read_slot(0, 0, out.data(), out.size()));
    EXPECT_EQ(out, data);
}

INSTANTIATE_TEST_SUITE_P(
    KindsWritersSizes, PersistEngineProperty,
    ::testing::Combine(
        ::testing::Values(StorageKind::kSsdMsync, StorageKind::kPmemNt,
                          StorageKind::kPmemClwb,
                          StorageKind::kCxlPmem),
        ::testing::Values(1, 2, 3),
        ::testing::Values<Bytes>(4096, 100'000)));

/** Odd-size persists at offsets: stripes must not clobber neighbors. */
class OffsetPersistProperty
    : public ::testing::TestWithParam<std::tuple<Bytes, Bytes>> {};

TEST_P(OffsetPersistProperty, NeighborsUntouched)
{
    const auto [offset, len] = GetParam();
    constexpr Bytes kSlot = 64 * 1024;
    MemStorage device(SlotStore::required_size(2, kSlot));
    SlotStore store = SlotStore::format(device, 2, kSlot);
    PersistEngineConfig offset_config;
    offset_config.writer_threads = 3;
    PersistEngine engine(store, offset_config);

    const auto background = random_data(kSlot, 1);
    PCCHECK_MUST(
        store.write_slot(0, 0, background.data(), background.size()));
    const auto patch = random_data(len, 2);
    ASSERT_TRUE(engine.persist_range(0, offset, patch.data(), len, 3)
                    .ok());

    std::vector<std::uint8_t> out(kSlot);
    PCCHECK_MUST(store.read_slot(0, 0, out.data(), out.size()));
    for (Bytes i = 0; i < kSlot; ++i) {
        const std::uint8_t expected =
            (i >= offset && i < offset + len) ? patch[i - offset]
                                              : background[i];
        ASSERT_EQ(out[i], expected) << "byte " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    OffsetsAndLengths, OffsetPersistProperty,
    ::testing::Combine(::testing::Values<Bytes>(0, 64, 1000, 4096),
                       ::testing::Values<Bytes>(1, 63, 65, 5000)));

/** Throttle: modeled duration scales linearly with bytes. */
class ThrottleScalingProperty
    : public ::testing::TestWithParam<double> {};

TEST_P(ThrottleScalingProperty, LinearInBytes)
{
    const double bandwidth = GetParam();
    BandwidthThrottle throttle(bandwidth);
    Stopwatch watch;
    const auto bytes = static_cast<Bytes>(bandwidth / 50);  // ~20 ms
    throttle.acquire(bytes);
    const Seconds t1 = watch.elapsed();
    EXPECT_GE(t1, 0.015);
    EXPECT_LT(t1, 0.12);
}

INSTANTIATE_TEST_SUITE_P(Bandwidths, ThrottleScalingProperty,
                         ::testing::Values(1e6, 20e6, 500e6));

// ---------------------------------------------------------------------------
// Torn-record recovery: the superblock-pair invariant. Counter c's
// pointer record lives at device offset 64 + (c % 2) * 64; flipping
// any bit of the in-flight (newest) record must make recovery fall
// back to the older record, whose data_crc still matches its slot.

/** Publish checkpoint @p counter into @p slot with random contents. */
std::vector<std::uint8_t>
publish_checkpoint(SlotStore& store, StorageDevice& device,
                   std::uint64_t counter, std::uint32_t slot, Bytes len,
                   std::uint64_t iteration)
{
    const auto data = random_data(len, counter * 7919 + slot);
    PCCHECK_MUST(store.write_slot(slot, 0, data.data(), data.size()));
    PCCHECK_MUST(store.persist_slot_range(slot, 0, data.size()));
    PCCHECK_MUST(device.fence());
    PCCHECK_MUST(store.publish_pointer(CheckpointPointer{
        counter, slot, data.size(), iteration,
        crc32c(data.data(), data.size())}));
    return data;
}

/** Device offset of the pointer record for checkpoint @p counter. */
constexpr Bytes
record_offset_for(std::uint64_t counter)
{
    return 64 + (counter % 2) * 64;
}

class TornRecordProperty
    : public ::testing::TestWithParam<std::tuple<Bytes, unsigned>> {};

TEST_P(TornRecordProperty, FallsBackToOlderRecord)
{
    const auto [byte_index, bit] = GetParam();
    constexpr Bytes kSlotSize = 8 * 1024;
    MemStorage device(SlotStore::required_size(3, kSlotSize));
    SlotStore store = SlotStore::format(device, 3, kSlotSize);

    const auto old_data =
        publish_checkpoint(store, device, 1, 0, kSlotSize, 100);
    publish_checkpoint(store, device, 2, 1, kSlotSize, 200);

    // Sanity: before corruption, recovery returns the newest record.
    auto before = store.recover_pointer(/*validate_data=*/true);
    ASSERT_TRUE(before.has_value());
    ASSERT_EQ(before->counter, 2u);

    // Tear the in-flight record for counter 2 (one flipped bit models
    // a partial sector write caught mid-crash).
    std::uint8_t byte = 0;
    PCCHECK_MUST(device.read(record_offset_for(2) + byte_index, &byte, 1));
    byte ^= static_cast<std::uint8_t>(1u << bit);
    PCCHECK_MUST(device.write(record_offset_for(2) + byte_index, &byte, 1));
    PCCHECK_MUST(device.persist(record_offset_for(2) + byte_index, 1));
    PCCHECK_MUST(device.fence());

    const auto recovered = store.recover_pointer(/*validate_data=*/true);
    ASSERT_TRUE(recovered.has_value())
        << "older record must survive a torn newer record";
    EXPECT_EQ(recovered->counter, 1u);
    EXPECT_EQ(recovered->slot, 0u);
    EXPECT_EQ(recovered->iteration, 100u);

    // The record it fell back to must reference intact data.
    std::vector<std::uint8_t> out(recovered->data_len);
    PCCHECK_MUST(store.read_slot(recovered->slot, 0, out.data(), out.size()));
    EXPECT_EQ(crc32c(out.data(), out.size()), recovered->data_crc);
    EXPECT_EQ(out, old_data);
}

INSTANTIATE_TEST_SUITE_P(
    BytesAndBits, TornRecordProperty,
    ::testing::Combine(
        // Offsets within the 64-byte RawRecord: counter, slot,
        // data_crc, data_len, iteration, pad, record_checksum.
        ::testing::Values<Bytes>(0, 8, 12, 16, 24, 40, 60),
        ::testing::Values(0u, 3u, 7u)));

/** Corrupt slot DATA under an intact record: data-CRC validation must
 *  reject the newest record and fall back to the older checkpoint. */
TEST(TornRecordProperty, CorruptDataFallsBackWhenValidating)
{
    constexpr Bytes kSlotSize = 8 * 1024;
    MemStorage device(SlotStore::required_size(3, kSlotSize));
    SlotStore store = SlotStore::format(device, 3, kSlotSize);

    const auto old_data =
        publish_checkpoint(store, device, 1, 0, kSlotSize, 100);
    publish_checkpoint(store, device, 2, 1, kSlotSize, 200);

    // Stomp a byte in the middle of counter 2's slot data (models a
    // slot recycled under a stale record).
    std::uint8_t byte = 0;
    PCCHECK_MUST(store.read_slot(1, kSlotSize / 2, &byte, 1));
    byte ^= 0xFF;
    PCCHECK_MUST(store.write_slot(1, kSlotSize / 2, &byte, 1));

    const auto validated = store.recover_pointer(/*validate_data=*/true);
    ASSERT_TRUE(validated.has_value());
    EXPECT_EQ(validated->counter, 1u);
    std::vector<std::uint8_t> out(validated->data_len);
    PCCHECK_MUST(store.read_slot(validated->slot, 0, out.data(), out.size()));
    EXPECT_EQ(out, old_data);

    // Without data validation the (syntactically valid) newest record
    // is still returned — recovery tools use this to enumerate.
    const auto raw = store.recover_pointer(/*validate_data=*/false);
    ASSERT_TRUE(raw.has_value());
    EXPECT_EQ(raw->counter, 2u);
}

/** Both records torn: recovery must report "no checkpoint", not a
 *  bogus pointer. */
TEST(TornRecordProperty, BothRecordsTornMeansNoCheckpoint)
{
    constexpr Bytes kSlotSize = 4 * 1024;
    MemStorage device(SlotStore::required_size(3, kSlotSize));
    SlotStore store = SlotStore::format(device, 3, kSlotSize);
    publish_checkpoint(store, device, 1, 0, kSlotSize, 100);
    publish_checkpoint(store, device, 2, 1, kSlotSize, 200);

    for (std::uint64_t counter : {1u, 2u}) {
        std::uint8_t byte = 0;
        PCCHECK_MUST(device.read(record_offset_for(counter), &byte, 1));
        byte ^= 0x01;
        PCCHECK_MUST(device.write(record_offset_for(counter), &byte, 1));
    }
    EXPECT_FALSE(store.recover_pointer(true).has_value());
}

}  // namespace
}  // namespace pccheck
