/**
 * @file
 * Parameterized sweeps over the persist engine and the throttled
 * storage stack: every (storage kind × writer count × size ×
 * striping) combination must produce byte-exact durable data, and the
 * §4.1 protocol differences (per-stripe fence on PMEM vs single msync
 * on SSD) must leave everything durable by the time persist_range
 * returns.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <tuple>
#include <vector>

#include "core/persist_engine.h"
#include "core/slot_store.h"
#include "storage/crash_sim.h"
#include "storage/mem_storage.h"
#include "storage/throttled_storage.h"
#include "util/rng.h"

namespace pccheck {
namespace {

std::vector<std::uint8_t>
random_data(Bytes len, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint8_t> data(len);
    for (auto& byte : data) {
        byte = static_cast<std::uint8_t>(rng.next_u64());
    }
    return data;
}

using PersistCase = std::tuple<StorageKind, int, Bytes>;

class PersistEngineProperty
    : public ::testing::TestWithParam<PersistCase> {};

/** Blocking persist: durable and byte-exact for every combination. */
TEST_P(PersistEngineProperty, DurableAndExact)
{
    const auto [kind, writers, size] = GetParam();
    CrashSimStorage device(SlotStore::required_size(2, size), kind,
                           /*seed=*/size, /*eviction=*/0.0);
    SlotStore store = SlotStore::format(device, 2, size);
    PersistEngineConfig config;
    config.writer_threads = 4;
    PersistEngine engine(store, config);
    const auto data = random_data(size, size + writers);

    engine.persist_range(1, 0, data.data(), data.size(), writers);
    // persist_range's contract: durable on return — even a crash with
    // zero eviction luck must preserve every byte.
    device.crash();
    std::vector<std::uint8_t> out(size);
    store.read_slot(1, 0, out.data(), out.size());
    EXPECT_EQ(out, data);
}

/** Async persist: same durability through the callback. */
TEST_P(PersistEngineProperty, AsyncDurableAndExact)
{
    const auto [kind, writers, size] = GetParam();
    CrashSimStorage device(SlotStore::required_size(2, size), kind,
                           size, 0.0);
    SlotStore store = SlotStore::format(device, 2, size);
    PersistEngine engine(store, PersistEngineConfig{4, 0});
    const auto data = random_data(size, size * 3 + writers);

    std::atomic<bool> done{false};
    engine.persist_range_async(0, 0, data.data(), data.size(), writers,
                               [&done] { done.store(true); });
    while (!done.load()) {
        std::this_thread::yield();
    }
    device.crash();
    std::vector<std::uint8_t> out(size);
    store.read_slot(0, 0, out.data(), out.size());
    EXPECT_EQ(out, data);
}

INSTANTIATE_TEST_SUITE_P(
    KindsWritersSizes, PersistEngineProperty,
    ::testing::Combine(
        ::testing::Values(StorageKind::kSsdMsync, StorageKind::kPmemNt,
                          StorageKind::kPmemClwb,
                          StorageKind::kCxlPmem),
        ::testing::Values(1, 2, 3),
        ::testing::Values<Bytes>(4096, 100'000)));

/** Odd-size persists at offsets: stripes must not clobber neighbors. */
class OffsetPersistProperty
    : public ::testing::TestWithParam<std::tuple<Bytes, Bytes>> {};

TEST_P(OffsetPersistProperty, NeighborsUntouched)
{
    const auto [offset, len] = GetParam();
    constexpr Bytes kSlot = 64 * 1024;
    MemStorage device(SlotStore::required_size(2, kSlot));
    SlotStore store = SlotStore::format(device, 2, kSlot);
    PersistEngine engine(store, PersistEngineConfig{3, 0});

    const auto background = random_data(kSlot, 1);
    store.write_slot(0, 0, background.data(), background.size());
    const auto patch = random_data(len, 2);
    engine.persist_range(0, offset, patch.data(), len, 3);

    std::vector<std::uint8_t> out(kSlot);
    store.read_slot(0, 0, out.data(), out.size());
    for (Bytes i = 0; i < kSlot; ++i) {
        const std::uint8_t expected =
            (i >= offset && i < offset + len) ? patch[i - offset]
                                              : background[i];
        ASSERT_EQ(out[i], expected) << "byte " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    OffsetsAndLengths, OffsetPersistProperty,
    ::testing::Combine(::testing::Values<Bytes>(0, 64, 1000, 4096),
                       ::testing::Values<Bytes>(1, 63, 65, 5000)));

/** Throttle: modeled duration scales linearly with bytes. */
class ThrottleScalingProperty
    : public ::testing::TestWithParam<double> {};

TEST_P(ThrottleScalingProperty, LinearInBytes)
{
    const double bandwidth = GetParam();
    BandwidthThrottle throttle(bandwidth);
    Stopwatch watch;
    const auto bytes = static_cast<Bytes>(bandwidth / 50);  // ~20 ms
    throttle.acquire(bytes);
    const Seconds t1 = watch.elapsed();
    EXPECT_GE(t1, 0.015);
    EXPECT_LT(t1, 0.12);
}

INSTANTIATE_TEST_SUITE_P(Bandwidths, ThrottleScalingProperty,
                         ::testing::Values(1e6, 20e6, 500e6));

}  // namespace
}  // namespace pccheck
