/**
 * @file
 * Unit tests for the multi-source RecoveryPlanner (docs/RECOVERY.md):
 * candidate ranking, per-candidate verdict reporting, quarantine of a
 * corrupt newest local slot, salvage of a remotely restored image, and
 * the salvage-target policy that refuses to overwrite a live copy.
 * End-to-end storm coverage lives in tests/recovery_storm_test.cc.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <map>
#include <vector>

#include "core/recovery_planner.h"
#include "core/slot_store.h"
#include "storage/mem_storage.h"
#include "util/check.h"
#include "util/crc32.h"

namespace pccheck {
namespace {

constexpr Bytes kState = 512;
constexpr std::uint32_t kSlots = 2;

std::vector<std::uint8_t>
image_for(std::uint64_t counter)
{
    std::vector<std::uint8_t> image(kState);
    for (Bytes j = 0; j < kState; ++j) {
        image[j] = static_cast<std::uint8_t>((counter * 37 + j) & 0xFF);
    }
    return image;
}

/** Publish @p counter into slot counter%kSlots under the full
 *  write → persist → fence → publish contract. */
std::vector<std::uint8_t>
publish(SlotStore& store, StorageDevice& device, std::uint64_t counter)
{
    const auto image = image_for(counter);
    const std::uint32_t slot = static_cast<std::uint32_t>(counter % kSlots);
    PCCHECK_MUST(store.write_slot(slot, 0, image.data(), image.size()));
    PCCHECK_MUST(store.persist_slot_range(slot, 0, image.size()));
    PCCHECK_MUST(device.fence());
    CheckpointPointer pointer;
    pointer.counter = counter;
    pointer.slot = slot;
    pointer.data_len = image.size();
    pointer.iteration = counter * 10;
    pointer.data_crc = crc32c(image.data(), image.size());
    PCCHECK_MUST(store.publish_pointer(pointer));
    return image;
}

/** In-memory RecoverySource: a map of counter → image, with optional
 *  fetch failure to model a peer dying between survey and transfer. */
class FakeSource final : public RecoverySource {
  public:
    explicit FakeSource(double cost = 5.0) : cost_(cost) {}

    void offer(std::uint64_t counter)
    {
        images_[counter] = image_for(counter);
    }
    void fail_fetches() { serve_ = false; }

    const char* name() const override { return "fake"; }

    std::vector<RecoveryCandidate> survey() override
    {
        std::vector<RecoveryCandidate> out;
        for (const auto& [counter, image] : images_) {
            RecoveryCandidate c;
            c.counter = counter;
            c.iteration = counter * 10;
            c.data_len = image.size();
            c.data_crc = crc32c(image.data(), image.size());
            c.cost = cost_;
            c.local = false;
            c.source_node = 1;
            out.push_back(c);
        }
        return out;
    }

    bool fetch(const RecoveryCandidate& candidate,
               std::vector<std::uint8_t>* out) override
    {
        ++fetches_;
        auto it = images_.find(candidate.counter);
        if (!serve_ || it == images_.end()) {
            return false;
        }
        *out = it->second;
        return true;
    }

    int fetches() const { return fetches_; }

  private:
    double cost_;
    bool serve_ = true;
    int fetches_ = 0;
    std::map<std::uint64_t, std::vector<std::uint8_t>> images_;
};

/** Durably flip one byte inside a slot's payload, bypassing the
 *  publish protocol — modeled bit rot at rest. */
void
rot_slot(StorageDevice& device, const SlotStore& store, std::uint32_t slot)
{
    std::uint8_t byte = 0;
    const Bytes off = store.slot_offset(slot) + 3;
    PCCHECK_MUST(device.read(off, &byte, 1));
    byte ^= 0x10;
    PCCHECK_MUST(device.write(off, &byte, 1));
    PCCHECK_MUST(device.persist(off, 1));
    PCCHECK_MUST(device.fence());
}

TEST(RecoveryPlannerTest, PlanRanksNewestFirstCostBreaksTies)
{
    MemStorage device(SlotStore::required_size(kSlots, kState));
    SlotStore store = SlotStore::format(device, kSlots, kState);
    publish(store, device, 1);
    publish(store, device, 2);

    FakeSource peer(/*cost=*/5.0);
    peer.offer(2);  // same counter as the newest local record
    peer.offer(3);  // strictly newer than anything local

    RecoveryPlanner planner(&device);
    planner.add_source(&peer);
    const std::vector<RecoveryCandidate> ranked = planner.plan();
    ASSERT_EQ(ranked.size(), 4u);
    EXPECT_EQ(ranked[0].counter, 3u);
    EXPECT_FALSE(ranked[0].local);
    // Counter tie: the free local read outranks the costed fetch.
    EXPECT_EQ(ranked[1].counter, 2u);
    EXPECT_TRUE(ranked[1].local);
    EXPECT_EQ(ranked[2].counter, 2u);
    EXPECT_FALSE(ranked[2].local);
    EXPECT_EQ(ranked[3].counter, 1u);
    EXPECT_STREQ(ranked[2].source, "fake");
    EXPECT_STREQ(ranked[1].source, "local");
}

TEST(RecoveryPlannerTest, RecoversNewestLocalAndMarksRestStale)
{
    MemStorage device(SlotStore::required_size(kSlots, kState));
    SlotStore store = SlotStore::format(device, kSlots, kState);
    publish(store, device, 1);
    const auto newest = publish(store, device, 2);

    RecoveryPlanner planner(&device);
    std::vector<std::uint8_t> out;
    const auto planned = planner.recover(&out);
    ASSERT_TRUE(planned.has_value());
    EXPECT_EQ(planned->result.counter, 2u);
    EXPECT_EQ(out, newest);
    EXPECT_FALSE(planned->from_replica);
    EXPECT_EQ(planned->slots_quarantined, 0u);
    ASSERT_EQ(planned->report.size(), 2u);
    EXPECT_EQ(planned->report[0].verdict, CandidateVerdict::kValid);
    EXPECT_EQ(planned->report[1].verdict, CandidateVerdict::kStale);
}

TEST(RecoveryPlannerTest, QuarantinesTornNewestAndFallsBack)
{
    MemStorage device(SlotStore::required_size(kSlots, kState));
    SlotStore store = SlotStore::format(device, kSlots, kState);
    const auto older = publish(store, device, 1);
    publish(store, device, 2);
    rot_slot(device, store, 2 % kSlots);

    RecoveryPlanner planner(&device);
    std::vector<std::uint8_t> out;
    const auto planned = planner.recover(&out);
    ASSERT_TRUE(planned.has_value());
    EXPECT_EQ(planned->result.counter, 1u);
    EXPECT_EQ(out, older);
    EXPECT_EQ(planned->slots_quarantined, 1u);
    ASSERT_EQ(planned->report.size(), 2u);
    EXPECT_EQ(planned->report[0].verdict, CandidateVerdict::kTorn);
    EXPECT_EQ(planned->report[1].verdict, CandidateVerdict::kValid);

    const SlotStore reopened = SlotStore::open(device);
    EXPECT_TRUE(reopened.is_quarantined(2 % kSlots));
    // The quarantine cache is shared per device: the handle opened
    // BEFORE the planner ran sees it too, without any reopen.
    EXPECT_TRUE(store.is_quarantined(2 % kSlots));
}

TEST(RecoveryPlannerTest, SalvagesRemoteImageIntoQuarantinedSlot)
{
    MemStorage device(SlotStore::required_size(kSlots, kState));
    SlotStore store = SlotStore::format(device, kSlots, kState);
    publish(store, device, 1);
    publish(store, device, 2);
    rot_slot(device, store, 2 % kSlots);

    FakeSource peer;
    peer.offer(2);
    RecoveryPlanner planner(&device);
    planner.add_source(&peer);
    std::vector<std::uint8_t> out;
    const auto planned = planner.recover(&out);
    ASSERT_TRUE(planned.has_value());
    // Torn local copy of 2 loses; the peer's copy of 2 wins and is
    // salvaged back into the slot its quarantine freed up.
    EXPECT_EQ(planned->result.counter, 2u);
    EXPECT_EQ(out, image_for(2));
    EXPECT_TRUE(planned->from_replica);
    EXPECT_EQ(planned->source_node, 1);
    EXPECT_TRUE(planned->salvaged);
    EXPECT_EQ(planned->slots_quarantined, 1u);

    // The salvage released the quarantine and re-published locally:
    // a planner with no sources now recovers the same bytes.
    const SlotStore reopened = SlotStore::open(device);
    EXPECT_TRUE(reopened.quarantined_slots().empty());
    RecoveryPlanner local_only(&device);
    std::vector<std::uint8_t> local_out;
    const auto relocal = local_only.recover(&local_out);
    ASSERT_TRUE(relocal.has_value());
    EXPECT_EQ(relocal->result.counter, 2u);
    EXPECT_EQ(local_out, image_for(2));
    EXPECT_FALSE(relocal->from_replica);
}

TEST(RecoveryPlannerTest, RefusesSalvageThatWouldRiskALiveCopy)
{
    MemStorage device(SlotStore::required_size(kSlots, kState));
    SlotStore store = SlotStore::format(device, kSlots, kState);
    publish(store, device, 1);
    publish(store, device, 2);

    // Both slots hold live, CRC-valid copies; the peer has something
    // newer. Salvaging counter 3 would have to overwrite one of them,
    // so the planner must restore from the peer WITHOUT salvaging.
    FakeSource peer;
    peer.offer(3);
    RecoveryPlanner planner(&device);
    planner.add_source(&peer);
    std::vector<std::uint8_t> out;
    const auto planned = planner.recover(&out);
    ASSERT_TRUE(planned.has_value());
    EXPECT_EQ(planned->result.counter, 3u);
    EXPECT_EQ(out, image_for(3));
    EXPECT_TRUE(planned->from_replica);
    EXPECT_FALSE(planned->salvaged);
    EXPECT_EQ(planned->slots_quarantined, 0u);

    // Local state is untouched: both copies still recoverable.
    const SlotStore reopened = SlotStore::open(device);
    EXPECT_TRUE(reopened.quarantined_slots().empty());
    RecoveryPlanner local_only(&device);
    std::vector<std::uint8_t> local_out;
    const auto relocal = local_only.recover(&local_out);
    ASSERT_TRUE(relocal.has_value());
    EXPECT_EQ(relocal->result.counter, 2u);
    EXPECT_EQ(local_out, image_for(2));
}

// Regression: a quarantined slot still referenced by a record NEWER
// than the salvaged counter must not be the preferred target. Here
// counter 3's record (torn, quarantined slot 1) survives; salvaging
// counter 2 into slot 1 would leave that newer record naming bytes it
// does not describe, and the next local recovery would re-quarantine
// the slot holding the only valid copy. The planner must instead
// overwrite counter 2's own torn slot.
TEST(RecoveryPlannerTest, SalvageAvoidsQuarantinedSlotWithNewerRecord)
{
    MemStorage device(SlotStore::required_size(kSlots, kState));
    SlotStore store = SlotStore::format(device, kSlots, kState);
    publish(store, device, 1);  // slot 1 (record later replaced by 3)
    publish(store, device, 2);  // slot 0
    publish(store, device, 3);  // slot 1
    rot_slot(device, store, 0);
    rot_slot(device, store, 1);

    FakeSource peer;
    peer.offer(2);  // only counter 2 is restorable anywhere
    RecoveryPlanner planner(&device);
    planner.add_source(&peer);
    std::vector<std::uint8_t> out;
    const auto planned = planner.recover(&out);
    ASSERT_TRUE(planned.has_value());
    EXPECT_EQ(planned->result.counter, 2u);
    EXPECT_EQ(out, image_for(2));
    EXPECT_TRUE(planned->salvaged);
    EXPECT_EQ(planned->slots_quarantined, 1u);  // counter 3's slot

    // The salvage landed in counter 2's own slot (0); counter 3's
    // record and quarantined slot 1 are untouched.
    const SlotStore reopened = SlotStore::open(device);
    EXPECT_TRUE(reopened.is_quarantined(1));
    EXPECT_FALSE(reopened.is_quarantined(0));

    // Local-only recovery now works and is a fixpoint: counter 2 is
    // served, nothing new is quarantined.
    RecoveryPlanner local_only(&device);
    std::vector<std::uint8_t> local_out;
    const auto relocal = local_only.recover(&local_out);
    ASSERT_TRUE(relocal.has_value());
    EXPECT_EQ(relocal->result.counter, 2u);
    EXPECT_EQ(local_out, image_for(2));
    EXPECT_FALSE(relocal->from_replica);
    EXPECT_EQ(relocal->slots_quarantined, 0u);
}

// Regression: when the ONLY possible target is a quarantined slot
// referenced by a newer record, the stale record must be durably
// invalidated before the salvage write — otherwise it survives as
// "newest local", CRC-fails on the next recovery, and hides the
// salvaged copy behind a fresh quarantine.
TEST(RecoveryPlannerTest, LastResortSalvageRetiresTheStaleNewerRecord)
{
    MemStorage device(SlotStore::required_size(kSlots, kState));
    SlotStore store = SlotStore::format(device, kSlots, kState);
    publish(store, device, 4);  // slot 0
    publish(store, device, 5);  // slot 1
    rot_slot(device, store, 0);
    rot_slot(device, store, 1);

    FakeSource peer;
    peer.offer(2);  // older than every local record
    RecoveryPlanner planner(&device);
    planner.add_source(&peer);
    std::vector<std::uint8_t> out;
    const auto planned = planner.recover(&out);
    ASSERT_TRUE(planned.has_value());
    EXPECT_EQ(planned->result.counter, 2u);
    EXPECT_EQ(out, image_for(2));
    EXPECT_TRUE(planned->from_replica);
    EXPECT_TRUE(planned->salvaged);

    // Counter 5's record is retired, its slot repaired and released:
    // no quarantine survives, and local-only recovery reaches the
    // salvaged counter 2 as a fixpoint instead of dying on a stale
    // newer record.
    const SlotStore reopened = SlotStore::open(device);
    EXPECT_TRUE(reopened.quarantined_slots().empty());
    RecoveryPlanner local_only(&device);
    std::vector<std::uint8_t> local_out;
    const auto relocal = local_only.recover(&local_out);
    ASSERT_TRUE(relocal.has_value());
    EXPECT_EQ(relocal->result.counter, 2u);
    EXPECT_EQ(local_out, image_for(2));
    EXPECT_FALSE(relocal->from_replica);
    EXPECT_EQ(relocal->slots_quarantined, 0u);
    ASSERT_FALSE(relocal->report.empty());
    EXPECT_EQ(relocal->report[0].counter, 2u);
}

TEST(RecoveryPlannerTest, FailedFetchFallsBackToLocal)
{
    MemStorage device(SlotStore::required_size(kSlots, kState));
    SlotStore store = SlotStore::format(device, kSlots, kState);
    const auto newest = publish(store, device, 2);

    FakeSource peer;
    peer.offer(5);
    peer.fail_fetches();  // peer dies between survey and transfer
    RecoveryPlanner planner(&device);
    planner.add_source(&peer);
    std::vector<std::uint8_t> out;
    const auto planned = planner.recover(&out);
    ASSERT_TRUE(planned.has_value());
    EXPECT_EQ(planned->result.counter, 2u);
    EXPECT_EQ(out, newest);
    EXPECT_EQ(planned->report[0].verdict, CandidateVerdict::kUnreadable);
    EXPECT_EQ(planned->report[1].verdict, CandidateVerdict::kValid);
    EXPECT_EQ(peer.fetches(), 1);
}

TEST(RecoveryPlannerTest, EmptyArenaAndNoSourcesYieldsNullopt)
{
    MemStorage device(SlotStore::required_size(kSlots, kState));
    SlotStore::format(device, kSlots, kState);
    RecoveryPlanner planner(&device);
    std::vector<std::uint8_t> out;
    EXPECT_FALSE(planner.recover(&out).has_value());

    // Unformatted media is "unreadable before we even rank", not fatal.
    MemStorage blank(SlotStore::required_size(kSlots, kState));
    RecoveryPlanner blank_planner(&blank);
    EXPECT_FALSE(blank_planner.recover(&out).has_value());
    EXPECT_TRUE(blank_planner.plan().empty());
}

}  // namespace
}  // namespace pccheck
