/**
 * @file
 * Unit tests for the util module: bytes, clocks, rng, stats, csv,
 * throttle, crc32, check/fatal.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include "util/affinity.h"
#include "util/bytes.h"
#include "util/check.h"
#include "util/clock.h"
#include "util/crc32.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/throttle.h"

namespace pccheck {
namespace {

using namespace literals;

TEST(BytesTest, LiteralsMatchConstants)
{
    EXPECT_EQ(1_kib, 1024u);
    EXPECT_EQ(1_mib, 1024u * 1024u);
    EXPECT_EQ(1_gib, 1024u * 1024u * 1024u);
    EXPECT_EQ(1_gb, 1000000000u);
}

TEST(BytesTest, AlignUpDown)
{
    EXPECT_EQ(align_up(0, 64), 0u);
    EXPECT_EQ(align_up(1, 64), 64u);
    EXPECT_EQ(align_up(64, 64), 64u);
    EXPECT_EQ(align_up(65, 64), 128u);
    EXPECT_EQ(align_down(63, 64), 0u);
    EXPECT_EQ(align_down(64, 64), 64u);
    EXPECT_EQ(align_down(127, 64), 64u);
}

TEST(BytesTest, FormatBytesPicksUnits)
{
    EXPECT_EQ(format_bytes(512), "512 B");
    EXPECT_EQ(format_bytes(1536), "1.50 KiB");
    EXPECT_EQ(format_bytes(3 * kGiB), "3.00 GiB");
}

TEST(CheckTest, FatalThrows)
{
    EXPECT_THROW(fatal("boom"), FatalError);
    try {
        fatal("specific message");
    } catch (const FatalError& e) {
        EXPECT_STREQ(e.what(), "specific message");
    }
}

TEST(ClockTest, MonotonicAdvances)
{
    const auto& clock = MonotonicClock::instance();
    const Seconds a = clock.now();
    clock.sleep_for(0.002);
    const Seconds b = clock.now();
    EXPECT_GE(b - a, 0.0015);
}

TEST(ClockTest, SleepForNegativeIsNoop)
{
    const auto& clock = MonotonicClock::instance();
    const Seconds a = clock.now();
    clock.sleep_for(-1.0);
    EXPECT_LT(clock.now() - a, 0.05);
}

TEST(ClockTest, ScaledClockSpeedsUpTime)
{
    const auto& base = MonotonicClock::instance();
    ScaledClock scaled(base, 100.0);
    const Seconds a = scaled.now();
    base.sleep_for(0.002);
    const Seconds b = scaled.now();
    EXPECT_GE(b - a, 0.15);  // 2 ms real ≈ 200 ms scaled
}

TEST(ClockTest, ScaledClockShortensSleeps)
{
    const auto& base = MonotonicClock::instance();
    ScaledClock scaled(base, 1000.0);
    const Seconds a = base.now();
    scaled.sleep_for(1.0);  // one scaled second = 1 ms real
    EXPECT_LT(base.now() - a, 0.25);
}

TEST(StopwatchTest, MeasuresElapsed)
{
    Stopwatch watch;
    MonotonicClock::instance().sleep_for(0.002);
    EXPECT_GE(watch.elapsed(), 0.0015);
    watch.reset();
    EXPECT_LT(watch.elapsed(), 0.002);
}

TEST(RngTest, Deterministic)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next_u64(), b.next_u64());
    }
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        equal += a.next_u64() == b.next_u64();
    }
    EXPECT_LT(equal, 2);
}

TEST(RngTest, NextBelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.next_below(17), 17u);
    }
}

TEST(RngTest, DoubleInUnitInterval)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.next_double();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(RngTest, ExponentialMeanConverges)
{
    Rng rng(11);
    RunningStat stat;
    for (int i = 0; i < 20000; ++i) {
        stat.add(rng.exponential(3.0));
    }
    EXPECT_NEAR(stat.mean(), 3.0, 0.15);
}

TEST(RngTest, NormalMeanAndStddevConverge)
{
    Rng rng(13);
    RunningStat stat;
    for (int i = 0; i < 20000; ++i) {
        stat.add(rng.normal(5.0, 2.0));
    }
    EXPECT_NEAR(stat.mean(), 5.0, 0.1);
    EXPECT_NEAR(stat.stddev(), 2.0, 0.1);
}

TEST(RngTest, ChanceRespectsProbability)
{
    Rng rng(17);
    int hits = 0;
    for (int i = 0; i < 10000; ++i) {
        hits += rng.chance(0.25);
    }
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(RunningStatTest, BasicMoments)
{
    RunningStat stat;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
        stat.add(x);
    }
    EXPECT_EQ(stat.count(), 8u);
    EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
    EXPECT_NEAR(stat.stddev(), 2.138, 0.01);
    EXPECT_DOUBLE_EQ(stat.min(), 2.0);
    EXPECT_DOUBLE_EQ(stat.max(), 9.0);
    EXPECT_DOUBLE_EQ(stat.sum(), 40.0);
}

TEST(RunningStatTest, EmptyIsZero)
{
    RunningStat stat;
    EXPECT_EQ(stat.count(), 0u);
    EXPECT_EQ(stat.mean(), 0.0);
    EXPECT_EQ(stat.variance(), 0.0);
}

TEST(RunningStatTest, MergeMatchesCombined)
{
    Rng rng(23);
    RunningStat all;
    RunningStat left;
    RunningStat right;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.normal(0, 1);
        all.add(x);
        (i % 2 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(left.min(), all.min());
    EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(HistogramTest, QuantilesOfUniformData)
{
    Histogram hist(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i) {
        hist.add(i + 0.5);
    }
    EXPECT_NEAR(hist.quantile(0.5), 50.0, 2.0);
    EXPECT_NEAR(hist.quantile(0.9), 90.0, 2.0);
}

TEST(HistogramTest, OverflowUnderflowCounted)
{
    Histogram hist(0.0, 10.0, 10);
    hist.add(-5.0);
    hist.add(50.0);
    hist.add(5.0);
    EXPECT_EQ(hist.count(), 3u);
}

TEST(CsvTest, EscapesSpecialCharacters)
{
    EXPECT_EQ(csv_escape("plain"), "plain");
    EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
    EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvTest, WritesHeaderAndRows)
{
    const std::string path = "/tmp/pccheck_csv_test.csv";
    {
        CsvWriter writer(path, {"a", "b"});
        writer.row({"1", "2"});
        writer.row_numeric("x", {3.5});
    }
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "a,b");
    std::getline(in, line);
    EXPECT_EQ(line, "1,2");
    std::getline(in, line);
    EXPECT_EQ(line, "x,3.5");
    std::remove(path.c_str());
}

TEST(ThrottleTest, UnthrottledIsImmediate)
{
    BandwidthThrottle throttle(0);
    Stopwatch watch;
    throttle.acquire(100 * kMiB);
    EXPECT_LT(watch.elapsed(), 0.01);
}

TEST(ThrottleTest, PacesToConfiguredBandwidth)
{
    BandwidthThrottle throttle(10e6);  // 10 MB/s
    Stopwatch watch;
    throttle.acquire(100'000);  // expect ~10 ms
    const Seconds elapsed = watch.elapsed();
    EXPECT_GE(elapsed, 0.008);
    EXPECT_LT(elapsed, 0.15);
}

TEST(ThrottleTest, ConcurrentCallersShareChannel)
{
    BandwidthThrottle throttle(10e6);
    Stopwatch watch;
    std::vector<std::thread> threads;
    for (int i = 0; i < 4; ++i) {
        threads.emplace_back([&throttle] { throttle.acquire(50'000); });
    }
    for (auto& thread : threads) {
        thread.join();
    }
    // 4 × 50 KB at 10 MB/s shared = at least ~20 ms total.
    EXPECT_GE(watch.elapsed(), 0.016);
}

TEST(Crc32Test, KnownVector)
{
    // CRC-32C("123456789") = 0xE3069283.
    const char* data = "123456789";
    EXPECT_EQ(crc32c(data, 9), 0xE3069283u);
}

TEST(Crc32Test, IncrementalMatchesOneShot)
{
    std::vector<std::uint8_t> data(10000);
    Rng rng(31);
    for (auto& byte : data) {
        byte = static_cast<std::uint8_t>(rng.next_u64());
    }
    const std::uint32_t whole = crc32c(data.data(), data.size());
    std::uint32_t inc = crc32c(data.data(), 1234);
    inc = crc32c(data.data() + 1234, data.size() - 1234, inc);
    EXPECT_EQ(whole, inc);
}

TEST(Crc32Test, DetectsBitFlip)
{
    std::vector<std::uint8_t> data(4096, 0xAB);
    const std::uint32_t before = crc32c(data.data(), data.size());
    data[2048] ^= 0x01;
    EXPECT_NE(before, crc32c(data.data(), data.size()));
}

TEST(AffinityTest, ReportsAtLeastOneCpu)
{
    EXPECT_GE(available_cpus(), 1);
}

TEST(AffinityTest, PinAndUnpinSucceed)
{
    // Pinning to CPU 0 must always be possible; index wraps modulo
    // the available CPUs, so large indices also succeed.
    EXPECT_TRUE(pin_current_thread(0));
    EXPECT_TRUE(pin_current_thread(1000));
    EXPECT_TRUE(unpin_current_thread());
}

TEST(AffinityTest, NegativeCpuRejected)
{
    EXPECT_FALSE(pin_current_thread(-1));
    unpin_current_thread();
}

}  // namespace
}  // namespace pccheck
