/**
 * @file
 * Tests for the storage substrate: DRAM/file/crash-sim devices,
 * persistence semantics, and the bandwidth-throttling decorator.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "storage/crash_sim.h"
#include "storage/file_storage.h"
#include "storage/mem_storage.h"
#include "storage/throttled_storage.h"
#include "util/clock.h"
#include "util/rng.h"
#include "util/check.h"

namespace pccheck {
namespace {

std::vector<std::uint8_t>
pattern(Bytes len, std::uint8_t seed)
{
    std::vector<std::uint8_t> data(len);
    for (Bytes i = 0; i < len; ++i) {
        data[i] = static_cast<std::uint8_t>(seed + i);
    }
    return data;
}

TEST(MemStorageTest, WriteReadRoundTrip)
{
    MemStorage mem(4096);
    const auto data = pattern(100, 7);
    PCCHECK_MUST(mem.write(123, data.data(), data.size()));
    std::vector<std::uint8_t> out(100);
    PCCHECK_MUST(mem.read(123, out.data(), out.size()));
    EXPECT_EQ(out, data);
}

TEST(MemStorageTest, KindIsDram)
{
    MemStorage mem(64);
    EXPECT_EQ(mem.kind(), StorageKind::kDram);
    EXPECT_FALSE(needs_fence(mem.kind()));
}

TEST(CrashSimTest, PersistedDataSurvivesCrash)
{
    CrashSimStorage dev(8192, StorageKind::kPmemNt, /*seed=*/1,
                        /*eviction_probability=*/0.0);
    const auto data = pattern(256, 1);
    PCCHECK_MUST(dev.write(0, data.data(), data.size()));
    PCCHECK_MUST(dev.persist(0, data.size()));
    PCCHECK_MUST(dev.fence());
    dev.crash();
    std::vector<std::uint8_t> out(256);
    PCCHECK_MUST(dev.read(0, out.data(), out.size()));
    EXPECT_EQ(out, data);
}

TEST(CrashSimTest, UnpersistedDataLostWithZeroEviction)
{
    CrashSimStorage dev(8192, StorageKind::kPmemNt, 1, 0.0);
    const auto data = pattern(256, 2);
    PCCHECK_MUST(dev.write(0, data.data(), data.size()));
    // No persist. With eviction probability 0 nothing reaches media.
    dev.crash();
    std::vector<std::uint8_t> out(256, 0xFF);
    PCCHECK_MUST(dev.read(0, out.data(), out.size()));
    EXPECT_EQ(out, std::vector<std::uint8_t>(256, 0));
}

TEST(CrashSimTest, PmemRequiresFenceForDurability)
{
    CrashSimStorage dev(8192, StorageKind::kPmemNt, 1, 0.0);
    const auto data = pattern(64, 3);
    PCCHECK_MUST(dev.write(0, data.data(), data.size()));
    PCCHECK_MUST(dev.persist(0, data.size()));  // write-back initiated, NOT fenced
    EXPECT_EQ(dev.pending_lines(), 1u);
    dev.crash();
    std::vector<std::uint8_t> out(64, 0xFF);
    PCCHECK_MUST(dev.read(0, out.data(), out.size()));
    EXPECT_EQ(out, std::vector<std::uint8_t>(64, 0));  // lost
}

TEST(CrashSimTest, SsdMsyncIsSynchronouslyDurable)
{
    CrashSimStorage dev(16384, StorageKind::kSsdMsync, 1, 0.0);
    const auto data = pattern(4096, 4);
    PCCHECK_MUST(dev.write(0, data.data(), data.size()));
    PCCHECK_MUST(dev.persist(0, data.size()));  // msync — durable without fence
    dev.crash();
    std::vector<std::uint8_t> out(4096);
    PCCHECK_MUST(dev.read(0, out.data(), out.size()));
    EXPECT_EQ(out, data);
}

TEST(CrashSimTest, RewriteInvalidatesPendingWriteback)
{
    CrashSimStorage dev(8192, StorageKind::kPmemNt, 1, 0.0);
    const auto first = pattern(64, 5);
    PCCHECK_MUST(dev.write(0, first.data(), first.size()));
    PCCHECK_MUST(dev.persist(0, 64));
    // Overwrite before the fence: the old write-back must not count.
    const auto second = pattern(64, 6);
    PCCHECK_MUST(dev.write(0, second.data(), second.size()));
    PCCHECK_MUST(dev.fence());  // nothing pending for this line anymore
    dev.crash();
    std::vector<std::uint8_t> out(64, 0xFF);
    PCCHECK_MUST(dev.read(0, out.data(), out.size()));
    EXPECT_EQ(out, std::vector<std::uint8_t>(64, 0));
}

TEST(CrashSimTest, EvictionMayPersistUnflushedLines)
{
    // With eviction probability 1 every dirty line reaches media even
    // without persist — modeling arbitrary cache eviction order.
    CrashSimStorage dev(8192, StorageKind::kPmemNt, 1, 1.0);
    const auto data = pattern(256, 7);
    PCCHECK_MUST(dev.write(0, data.data(), data.size()));
    dev.crash();
    std::vector<std::uint8_t> out(256);
    PCCHECK_MUST(dev.read(0, out.data(), out.size()));
    EXPECT_EQ(out, data);
}

TEST(CrashSimTest, PartialEvictionTearsData)
{
    // With probability 0.5 some lines of a multi-line write survive
    // and others do not — the torn-state hazard of §2.3.
    CrashSimStorage dev(64 * 1024, StorageKind::kPmemNt, 12345, 0.5);
    const auto data = pattern(32 * 1024, 8);
    PCCHECK_MUST(dev.write(0, data.data(), data.size()));
    dev.crash();
    std::vector<std::uint8_t> out(32 * 1024);
    PCCHECK_MUST(dev.read(0, out.data(), out.size()));
    bool any_survived = false;
    bool any_lost = false;
    for (Bytes line = 0; line < 32 * 1024 / 64; ++line) {
        const bool survived =
            std::memcmp(out.data() + line * 64, data.data() + line * 64,
                        64) == 0;
        any_survived |= survived;
        any_lost |= !survived;
    }
    EXPECT_TRUE(any_survived);
    EXPECT_TRUE(any_lost);
}

TEST(CrashSimTest, DirtyTrackingCounts)
{
    CrashSimStorage dev(8192, StorageKind::kPmemNt, 1, 0.0);
    EXPECT_EQ(dev.dirty_lines(), 0u);
    std::uint8_t byte = 1;
    PCCHECK_MUST(dev.write(0, &byte, 1));
    PCCHECK_MUST(dev.write(64, &byte, 1));
    EXPECT_EQ(dev.dirty_lines(), 2u);
    PCCHECK_MUST(dev.persist(0, 1));
    EXPECT_EQ(dev.dirty_lines(), 1u);
    EXPECT_EQ(dev.pending_lines(), 1u);
    PCCHECK_MUST(dev.fence());
    EXPECT_EQ(dev.pending_lines(), 0u);
}

TEST(FileStorageTest, PersistsAcrossReopen)
{
    const std::string path = "/tmp/pccheck_file_storage_test.bin";
    const auto data = pattern(8192, 9);
    {
        FileStorage file(path, 16384);
        PCCHECK_MUST(file.write(100, data.data(), data.size()));
        PCCHECK_MUST(file.persist(100, data.size()));
        EXPECT_EQ(file.kind(), StorageKind::kSsdMsync);
    }
    {
        FileStorage file(path, 16384);
        std::vector<std::uint8_t> out(8192);
        PCCHECK_MUST(file.read(100, out.data(), out.size()));
        EXPECT_EQ(out, data);
    }
    std::remove(path.c_str());
}

// Regression: a device image truncated below what a reader expects
// (e.g. a checkpoint arena cut short mid-copy) must surface as a
// permanent StorageStatus from read(), not a process abort. Recovery
// relies on this to classify the candidate unreadable and fall back.
TEST(FileStorageTest, ReadPastTruncatedImageIsPermanentError)
{
    const std::string path = "/tmp/pccheck_file_storage_trunc_test.bin";
    const auto data = pattern(4096, 13);
    {
        FileStorage file(path, 16384);
        PCCHECK_MUST(file.write(0, data.data(), data.size()));
        PCCHECK_MUST(file.persist(0, data.size()));
    }
    {
        // Reopen the same image mapped at a quarter of the original
        // size, as if the tail never reached the disk.
        FileStorage file(path, 4096);
        std::vector<std::uint8_t> out(4096);
        PCCHECK_MUST(file.read(0, out.data(), out.size()));
        EXPECT_EQ(out, data);

        // Straddling the mapped size and landing entirely past it are
        // both permanent faults: retrying cannot make the bytes exist.
        StorageStatus straddle = file.read(2048, out.data(), out.size());
        EXPECT_FALSE(straddle.ok());
        EXPECT_TRUE(straddle.is_permanent());
        StorageStatus beyond = file.read(8192, out.data(), 64);
        EXPECT_FALSE(beyond.ok());
        EXPECT_TRUE(beyond.is_permanent());

        // The device stays usable after a rejected read.
        PCCHECK_MUST(file.read(0, out.data(), 64));
    }
    std::remove(path.c_str());
}

TEST(ThrottledStorageTest, ForwardsDataIntact)
{
    ThrottledStorage dev(std::make_unique<MemStorage>(4096), 0, 0, 0);
    const auto data = pattern(512, 10);
    PCCHECK_MUST(dev.write(64, data.data(), data.size()));
    std::vector<std::uint8_t> out(512);
    PCCHECK_MUST(dev.read(64, out.data(), out.size()));
    EXPECT_EQ(out, data);
    EXPECT_EQ(dev.size(), 4096u);
}

TEST(ThrottledStorageTest, WriteChannelPaced)
{
    ThrottledStorage dev(std::make_unique<MemStorage>(1 << 20),
                         /*write=*/10e6, /*persist=*/0, /*read=*/0);
    const auto data = pattern(100'000, 11);
    Stopwatch watch;
    PCCHECK_MUST(dev.write(0, data.data(), data.size()));  // ~10 ms at 10 MB/s
    EXPECT_GE(watch.elapsed(), 0.008);
}

TEST(ThrottledStorageTest, PersistChannelPaced)
{
    ThrottledStorage dev(std::make_unique<MemStorage>(1 << 20), 0,
                         /*persist=*/10e6, 0);
    const auto data = pattern(100'000, 12);
    PCCHECK_MUST(dev.write(0, data.data(), data.size()));
    Stopwatch watch;
    PCCHECK_MUST(dev.persist(0, data.size()));
    EXPECT_GE(watch.elapsed(), 0.008);
}

TEST(ThrottledStorageTest, PaperProfilesAreSane)
{
    const auto ssd = paper_bandwidth(StorageKind::kSsdMsync);
    EXPECT_GT(ssd.persist_bytes_per_sec, 0);
    const auto nt = paper_bandwidth(StorageKind::kPmemNt);
    const auto clwb = paper_bandwidth(StorageKind::kPmemClwb);
    // §3.3: nt-store (4.01 GB/s) beats clwb (2.46 GB/s).
    EXPECT_GT(nt.write_bytes_per_sec, clwb.write_bytes_per_sec);
}

}  // namespace
}  // namespace pccheck
