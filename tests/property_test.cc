/**
 * @file
 * Parameterized property sweeps (TEST_P) over the DESIGN.md §5
 * invariants:
 *
 *  I1/I2 — crash-recovery durability and monotonicity, swept over
 *          storage kinds, eviction probabilities, concurrency levels,
 *          queue implementations, and pipelining configurations;
 *  I3    — slot safety under concurrent commit traffic;
 *  I4    — progress with bounded writers;
 *  plus round-trip properties of the storage stack and scaling rules.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <tuple>
#include <vector>

#include "core/concurrent_commit.h"
#include "core/orchestrator.h"
#include "core/recovery.h"
#include "core/slot_store.h"
#include "storage/crash_sim.h"
#include "storage/mem_storage.h"
#include "trainsim/models.h"
#include "trainsim/training_state.h"
#include "util/crc32.h"
#include "util/rng.h"
#include "util/check.h"

namespace pccheck {
namespace {

// ----------------------------------------------------- crash properties

/** (storage kind, eviction probability, N, queue kind, chunked). */
using CrashParams =
    std::tuple<StorageKind, double, int, SlotQueueKind, bool>;

class CrashRecoveryProperty
    : public ::testing::TestWithParam<CrashParams> {};

/**
 * I1 + I2: run a full orchestrator against the adversarial device,
 * crash after a prefix of checkpoints, and require recovery to yield
 * a consistent checkpoint at least as new as the last drained one.
 */
TEST_P(CrashRecoveryProperty, RecoversConsistentAndMonotonic)
{
    const auto [kind, eviction, concurrency, queue_kind, chunked] =
        GetParam();
    constexpr Bytes kState = 64 * 1024;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        CrashSimStorage device(
            SlotStore::required_size(
                static_cast<std::uint32_t>(concurrency + 1), kState),
            kind, seed, eviction);
        std::uint64_t drained_iteration = 0;
        {
            GpuConfig gpu_config;
            gpu_config.memory_bytes = 2 * kMiB;
            gpu_config.pcie_bytes_per_sec = 0;
            SimGpu gpu(gpu_config);
            TrainingState state(gpu, kState);
            PCcheckConfig config;
            config.concurrent_checkpoints = concurrency;
            config.queue_kind = queue_kind;
            if (chunked) {
                config.chunk_bytes = 16 * 1024;
                config.dram_bytes = 48 * 1024;
            }
            PCcheckCheckpointer checkpointer(state, device, config);
            Rng rng(seed * 77);
            const int checkpoints =
                2 + static_cast<int>(rng.next_below(6));
            for (int i = 1; i <= checkpoints; ++i) {
                checkpointer.before_update(
                    static_cast<std::uint64_t>(i));
                state.stamp(static_cast<std::uint64_t>(i));
                checkpointer.request_checkpoint(
                    static_cast<std::uint64_t>(i));
            }
            checkpointer.finish();
            const auto latest =
                checkpointer.commit_protocol().latest_pointer();
            ASSERT_TRUE(latest.has_value());
            drained_iteration = latest->iteration;
        }
        device.crash();

        std::vector<std::uint8_t> buffer;
        const auto recovered = recover_to_buffer(device, &buffer);
        ASSERT_TRUE(recovered.has_value()) << "seed " << seed;
        EXPECT_GE(recovered->iteration, drained_iteration)
            << "seed " << seed;
        const auto stamped =
            TrainingState::verify_buffer(buffer.data(), buffer.size());
        ASSERT_TRUE(stamped.has_value()) << "seed " << seed;
        EXPECT_EQ(*stamped, recovered->iteration) << "seed " << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndEviction, CrashRecoveryProperty,
    ::testing::Combine(
        ::testing::Values(StorageKind::kSsdMsync, StorageKind::kPmemNt,
                          StorageKind::kPmemClwb),
        ::testing::Values(0.0, 0.5, 1.0),
        ::testing::Values(2),
        ::testing::Values(SlotQueueKind::kVyukov),
        ::testing::Values(false)));

INSTANTIATE_TEST_SUITE_P(
    ConcurrencyLevels, CrashRecoveryProperty,
    ::testing::Combine(::testing::Values(StorageKind::kPmemNt),
                       ::testing::Values(0.5),
                       ::testing::Values(1, 2, 3, 4),
                       ::testing::Values(SlotQueueKind::kVyukov),
                       ::testing::Values(false)));

INSTANTIATE_TEST_SUITE_P(
    QueueKinds, CrashRecoveryProperty,
    ::testing::Combine(::testing::Values(StorageKind::kPmemNt),
                       ::testing::Values(0.5),
                       ::testing::Values(2),
                       ::testing::Values(SlotQueueKind::kVyukov,
                                         SlotQueueKind::kMichaelScott,
                                         SlotQueueKind::kMutex),
                       ::testing::Values(false)));

INSTANTIATE_TEST_SUITE_P(
    Pipelined, CrashRecoveryProperty,
    ::testing::Combine(::testing::Values(StorageKind::kPmemNt,
                                         StorageKind::kSsdMsync),
                       ::testing::Values(0.5),
                       ::testing::Values(2, 3),
                       ::testing::Values(SlotQueueKind::kVyukov),
                       ::testing::Values(true)));

// ------------------------------------------------- slot-safety property

class SlotSafetyProperty : public ::testing::TestWithParam<int> {};

/**
 * I3: under heavy concurrent begin/commit traffic, a slot is never
 * held by two in-flight checkpoints and the committed pointer's slot
 * is never handed out. Detection: every in-flight ticket stamps its
 * slot with its unique counter and verifies the stamp just before
 * commit — a double allocation would overwrite it.
 */
TEST_P(SlotSafetyProperty, NoDoubleAllocation)
{
    const int writers = GetParam();
    constexpr Bytes kState = 8 * 1024;
    MemStorage device(SlotStore::required_size(
        static_cast<std::uint32_t>(writers + 1), kState));
    SlotStore store = SlotStore::format(
        device, static_cast<std::uint32_t>(writers + 1), kState);
    ConcurrentCommit commit(store);

    std::atomic<bool> violation{false};
    std::vector<std::thread> threads;
    for (int writer = 0; writer < writers; ++writer) {
        threads.emplace_back([&] {
            for (int i = 0; i < 40; ++i) {
                const CheckpointTicket ticket = commit.begin();
                std::vector<std::uint8_t> data(kState);
                TrainingState::stamp_buffer(data.data(), data.size(),
                                            ticket.counter);
                PCCHECK_MUST(store.write_slot(ticket.slot, 0,
                                              data.data(),
                                              data.size()));
                // Re-read: if another ticket got the same slot, the
                // stamp no longer matches our counter.
                std::vector<std::uint8_t> readback(kState);
                PCCHECK_MUST(store.read_slot(ticket.slot, 0, readback.data(),
                                readback.size()));
                const auto stamped = TrainingState::verify_buffer(
                    readback.data(), readback.size());
                if (!stamped.has_value() ||
                    *stamped != ticket.counter) {
                    violation.store(true);
                }
                PCCHECK_MUST(store.persist_slot_range(ticket.slot, 0, kState));
                PCCHECK_MUST(store.device().fence());
                commit.commit(ticket, kState, ticket.counter,
                              crc32c(data.data(), data.size()));
            }
        });
    }
    for (auto& thread : threads) {
        thread.join();
    }
    EXPECT_FALSE(violation.load());
    // I2 at quiescence: final pointer is the max committed counter.
    const auto final_ptr = store.recover_pointer();
    ASSERT_TRUE(final_ptr.has_value());
    EXPECT_EQ(final_ptr->counter, commit.latest_counter());
}

INSTANTIATE_TEST_SUITE_P(WriterCounts, SlotSafetyProperty,
                         ::testing::Values(1, 2, 3, 4));

// -------------------------------------------------- progress property

class ProgressProperty : public ::testing::TestWithParam<SlotQueueKind> {
};

/**
 * I4: with N writers over N+1 slots, every begin() eventually obtains
 * a slot — the run terminates (no livelock). A generous watchdog
 * converts a hang into a failure instead of a stuck test run.
 */
TEST_P(ProgressProperty, BoundedWritersTerminate)
{
    constexpr Bytes kState = 4 * 1024;
    constexpr int kWriters = 4;
    MemStorage device(
        SlotStore::required_size(kWriters + 1, kState));
    SlotStore store = SlotStore::format(device, kWriters + 1, kState);
    ConcurrentCommit commit(store, GetParam());

    std::atomic<int> completed{0};
    std::vector<std::thread> threads;
    for (int writer = 0; writer < kWriters; ++writer) {
        threads.emplace_back([&] {
            std::vector<std::uint8_t> data(kState, 0x5C);
            const std::uint32_t crc = crc32c(data.data(), data.size());
            for (int i = 0; i < 50; ++i) {
                const CheckpointTicket ticket = commit.begin();
                PCCHECK_MUST(store.write_slot(ticket.slot, 0,
                                              data.data(),
                                              data.size()));
                PCCHECK_MUST(store.persist_slot_range(ticket.slot, 0, kState));
                PCCHECK_MUST(store.device().fence());
                commit.commit(ticket, kState, ticket.counter, crc);
                completed.fetch_add(1);
            }
        });
    }
    // Watchdog: the whole run should finish in well under 30 s.
    const Seconds deadline =
        MonotonicClock::instance().now() + 30.0;
    for (auto& thread : threads) {
        thread.join();
    }
    EXPECT_LT(MonotonicClock::instance().now(), deadline);
    EXPECT_EQ(completed.load(), kWriters * 50);
}

INSTANTIATE_TEST_SUITE_P(AllQueues, ProgressProperty,
                         ::testing::Values(SlotQueueKind::kVyukov,
                                           SlotQueueKind::kMichaelScott,
                                           SlotQueueKind::kMutex));

// ------------------------------------------- storage round-trip sweep

class StorageRoundTrip
    : public ::testing::TestWithParam<std::tuple<StorageKind, Bytes>> {};

/** Persisted data always survives crash, byte-exactly, at any size. */
TEST_P(StorageRoundTrip, PersistedBytesSurvive)
{
    const auto [kind, size] = GetParam();
    CrashSimStorage device(size + 8192, kind, /*seed=*/3,
                           /*eviction=*/0.0);
    Rng rng(size);
    std::vector<std::uint8_t> data(size);
    for (auto& byte : data) {
        byte = static_cast<std::uint8_t>(rng.next_u64());
    }
    PCCHECK_MUST(device.write(4096, data.data(), data.size()));
    PCCHECK_MUST(device.persist(4096, data.size()));
    PCCHECK_MUST(device.fence());
    device.crash();
    std::vector<std::uint8_t> out(size);
    PCCHECK_MUST(device.read(4096, out.data(), out.size()));
    EXPECT_EQ(out, data);
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSizes, StorageRoundTrip,
    ::testing::Combine(::testing::Values(StorageKind::kSsdMsync,
                                         StorageKind::kPmemNt,
                                         StorageKind::kPmemClwb),
                       ::testing::Values<Bytes>(1, 63, 64, 65, 4095,
                                                4096, 40000)));

// ------------------------------------------------ scaling-law property

class ScalingProperty
    : public ::testing::TestWithParam<std::tuple<const char*, double,
                                                 double>> {};

/** Tw/(f·t) is invariant under any (Kt, Ks) scaling (DESIGN.md §1). */
TEST_P(ScalingProperty, CheckpointToIterationRatioInvariant)
{
    const auto [model_name, kt, ks] = GetParam();
    const ModelSpec& spec = model_by_name(model_name);
    const ScaleFactors factors{kt, ks};
    const ScaledModel scaled = scale_model(spec, factors);

    const double full_bw = 0.45e9;
    const double full_ratio =
        (static_cast<double>(spec.checkpoint_bytes) / full_bw) /
        spec.iteration_time;
    const double scaled_ratio =
        (static_cast<double>(scaled.checkpoint_bytes) /
         factors.scale_bandwidth(full_bw)) /
        scaled.iteration_time;
    // The 4 KiB size floor distorts only absurd scales; these stay
    // within a percent.
    EXPECT_NEAR(scaled_ratio / full_ratio, 1.0, 0.01)
        << model_name << " kt=" << kt << " ks=" << ks;
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndScales, ScalingProperty,
    ::testing::Combine(::testing::Values("vgg16", "bert", "opt-1.3b",
                                         "bloom-7b"),
                       ::testing::Values(10.0, 100.0, 667.0),
                       ::testing::Values(100.0, 2000.0, 10000.0)));

// ------------------------------------- marker-stamp detection property

class StampDetectionProperty
    : public ::testing::TestWithParam<Bytes> {};

/** Any single torn 4 KiB page from another iteration is detected. */
TEST_P(StampDetectionProperty, SingleTornPageDetected)
{
    const Bytes size = GetParam();
    std::vector<std::uint8_t> buffer(size);
    TrainingState::stamp_buffer(buffer.data(), size, 10);
    // Tear one marker page with a different iteration.
    Rng rng(size);
    const Bytes pages = size / TrainingState::kMarkerStride;
    const Bytes victim =
        rng.next_below(pages) * TrainingState::kMarkerStride;
    TrainingState::stamp_buffer(buffer.data() + victim,
                                TrainingState::kMarkerStride, 11);
    EXPECT_FALSE(
        TrainingState::verify_buffer(buffer.data(), size).has_value());
}

INSTANTIATE_TEST_SUITE_P(Sizes, StampDetectionProperty,
                         ::testing::Values<Bytes>(8192, 65536, 262144));

}  // namespace
}  // namespace pccheck
