/**
 * @file
 * Tests for the extension modules: adaptive interval control (§3.4
 * future work), checkpoint sharding (§3.1 data+pipeline parallelism),
 * the JIT-checkpointing goodput model (§2.2), the GPUDirect-style
 * direct path (§3.3 ablation), CXL-attached PMEM (§2.3), and the
 * metrics registry.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "core/adaptive.h"
#include "core/orchestrator.h"
#include "core/recovery.h"
#include "core/sharding.h"
#include "core/slot_store.h"
#include "goodput/jit.h"
#include "storage/crash_sim.h"
#include "storage/mem_storage.h"
#include "storage/throttled_storage.h"
#include "trace/preemption_trace.h"
#include "trainsim/models.h"
#include "trainsim/training_loop.h"
#include "trainsim/training_state.h"
#include "util/metrics.h"
#include "util/check.h"

namespace pccheck {
namespace {

GpuConfig
fast_gpu(Bytes memory = 2 * kMiB)
{
    GpuConfig config;
    config.memory_bytes = memory;
    config.pcie_bytes_per_sec = 0;
    return config;
}

// ------------------------------------------------------------- adaptive

TEST(AdaptiveControllerTest, Eq3Reevaluation)
{
    AdaptiveController::Options options;
    options.max_overhead = 1.05;
    options.concurrent = 2;
    options.ewma_alpha = 1.0;  // no smoothing: direct response
    options.hysteresis = 0.0;
    AdaptiveController controller(options, 10);
    // Tw = 2.1 s, t = 0.1 s: f* = ceil(2.1 / (2·1.05·0.1)) = 10.
    controller.observe_iteration(0.1);
    controller.observe_checkpoint(2.1);
    EXPECT_EQ(controller.interval(), 10u);
    // Iterations slow 3×: f* = ceil(2.1 / 0.63) = 4.
    controller.observe_iteration(0.3);
    EXPECT_EQ(controller.interval(), 4u);
    // Storage gets congested, Tw 4×: f* = ceil(8.4/0.63) = 14.
    controller.observe_checkpoint(8.4);
    EXPECT_EQ(controller.interval(), 14u);
    EXPECT_GE(controller.adaptations(), 2u);
}

TEST(AdaptiveControllerTest, HysteresisSuppressesSmallMoves)
{
    AdaptiveController::Options options;
    options.ewma_alpha = 1.0;
    options.hysteresis = 0.5;
    AdaptiveController controller(options, 10);
    controller.observe_iteration(0.1);
    controller.observe_checkpoint(2.1);  // target 10 == current
    controller.observe_checkpoint(2.4);  // target 12, within 50%
    EXPECT_EQ(controller.interval(), 10u);
    controller.observe_checkpoint(8.0);  // target 39: adapt
    EXPECT_NE(controller.interval(), 10u);
}

TEST(AdaptiveControllerTest, ClampsToBounds)
{
    AdaptiveController::Options options;
    options.ewma_alpha = 1.0;
    options.hysteresis = 0.0;
    options.min_interval = 5;
    options.max_interval = 50;
    AdaptiveController controller(options, 10);
    controller.observe_iteration(1.0);
    controller.observe_checkpoint(0.001);  // wants f*=1
    EXPECT_EQ(controller.interval(), 5u);
    controller.observe_checkpoint(10000.0);  // wants huge f*
    EXPECT_EQ(controller.interval(), 50u);
}

TEST(AdaptiveCheckpointerTest, PacesInnerSystem)
{
    SimGpu gpu(fast_gpu());
    TrainingState state(gpu, 32 * 1024);
    MemStorage device(SlotStore::required_size(3, 32 * 1024));
    PCcheckConfig config;
    PCcheckCheckpointer inner(state, device, config);

    AdaptiveController::Options options;
    options.hysteresis = 10.0;  // effectively frozen at initial f
    AdaptiveController controller(options, /*initial_interval=*/7);
    AdaptiveCheckpointer adaptive(inner, controller);

    const ScaledModel model =
        scale_model(model_by_name("vgg16"), ScaleFactors{600.0, 30000.0});
    TrainingLoop loop(gpu, state, model);
    loop.run(21, /*request every iteration*/ 1, adaptive);
    // Only iterations 7, 14, 21 actually checkpointed.
    EXPECT_EQ(adaptive.checkpoints_taken(), 3u);
    EXPECT_EQ(adaptive.stats().completed, 3u);
}

// ------------------------------------------------------------- sharding

TEST(ShardingTest, PlanCoversStageExactly)
{
    const auto plan = plan_shards(100 * 4096, 3);
    ASSERT_EQ(plan.size(), 3u);
    Bytes expected_offset = 0;
    Bytes total = 0;
    for (const auto& shard : plan) {
        EXPECT_EQ(shard.offset, expected_offset);
        EXPECT_EQ(shard.offset % 4096, 0u);
        expected_offset += shard.length;
        total += shard.length;
    }
    EXPECT_EQ(total, 100u * 4096u);
}

TEST(ShardingTest, TooManyReplicasThrows)
{
    EXPECT_THROW(plan_shards(4096, 3), FatalError);
}

TEST(ShardingTest, ShardedCheckpointReassembles)
{
    constexpr Bytes kStage = 96 * 1024;
    constexpr int kReplicas = 3;
    SimGpu gpu(fast_gpu());
    TrainingState state(gpu, kStage);
    state.stamp(77);

    const auto plan = plan_shards(kStage, kReplicas);
    std::vector<std::unique_ptr<MemStorage>> devices;
    for (int replica = 0; replica < kReplicas; ++replica) {
        const auto& shard = plan[static_cast<std::size_t>(replica)];
        devices.push_back(std::make_unique<MemStorage>(
            SlotStore::required_size(3, shard.length)));
        PCcheckConfig config;
        config.region_offset = shard.offset;
        config.region_bytes = shard.length;
        PCcheckCheckpointer checkpointer(state, *devices.back(), config);
        checkpointer.request_checkpoint(77);
        checkpointer.finish();
    }

    std::vector<StorageDevice*> device_ptrs;
    for (const auto& device : devices) {
        device_ptrs.push_back(device.get());
    }
    const auto assembled = assemble_shards(device_ptrs, plan);
    ASSERT_TRUE(assembled.has_value());
    EXPECT_EQ(assembled->iteration, 77u);
    EXPECT_EQ(assembled->data.size(), kStage);
    EXPECT_EQ(TrainingState::verify_buffer(assembled->data.data(),
                                           assembled->data.size()),
              std::make_optional<std::uint64_t>(77));
}

TEST(ShardingTest, DisagreeingIterationsRejected)
{
    constexpr Bytes kStage = 64 * 1024;
    SimGpu gpu(fast_gpu());
    TrainingState state(gpu, kStage);
    const auto plan = plan_shards(kStage, 2);
    std::vector<std::unique_ptr<MemStorage>> devices;
    for (int replica = 0; replica < 2; ++replica) {
        const auto& shard = plan[static_cast<std::size_t>(replica)];
        devices.push_back(std::make_unique<MemStorage>(
            SlotStore::required_size(3, shard.length)));
        // Replica 0 checkpoints iteration 10, replica 1 iteration 20.
        state.stamp(replica == 0 ? 10 : 20);
        PCcheckConfig config;
        config.region_offset = shard.offset;
        config.region_bytes = shard.length;
        PCcheckCheckpointer checkpointer(state, *devices.back(), config);
        checkpointer.request_checkpoint(state.iteration());
        checkpointer.finish();
    }
    std::vector<StorageDevice*> device_ptrs = {devices[0].get(),
                                               devices[1].get()};
    EXPECT_FALSE(assemble_shards(device_ptrs, plan).has_value());
}

TEST(ShardingTest, ShardSurvivesCrash)
{
    constexpr Bytes kStage = 64 * 1024;
    SimGpu gpu(fast_gpu());
    TrainingState state(gpu, kStage);
    state.stamp(5);
    const auto plan = plan_shards(kStage, 2);
    CrashSimStorage device(
        SlotStore::required_size(3, plan[1].length),
        StorageKind::kPmemNt, 3, 0.5);
    {
        PCcheckConfig config;
        config.region_offset = plan[1].offset;
        config.region_bytes = plan[1].length;
        PCcheckCheckpointer checkpointer(state, device, config);
        checkpointer.request_checkpoint(5);
        checkpointer.finish();
    }
    device.crash();
    std::vector<std::uint8_t> shard;
    const auto recovered = recover_to_buffer(device, &shard);
    ASSERT_TRUE(recovered.has_value());
    EXPECT_EQ(TrainingState::verify_buffer(shard.data(), shard.size(),
                                           plan[1].offset),
              std::make_optional<std::uint64_t>(5));
}

// ------------------------------------------------------------------ JIT

TEST(JitGoodputTest, NoBurstsMeansNoFallbacks)
{
    PreemptionTrace trace;
    trace.duration = 10000;
    for (int i = 0; i < 10; ++i) {
        trace.events.push_back({i * 1000.0, 1});  // single-VM losses
    }
    JitInputs inputs;
    inputs.total_vms = 64;
    inputs.replicas = 2;
    inputs.throughput = 1.0;
    inputs.jit_recovery = 10;
    inputs.fallback_recovery = 5000;
    Rng rng(1);
    const auto result = replay_jit_goodput(trace, inputs, rng);
    EXPECT_EQ(result.catastrophic_failures, 0u);
    EXPECT_EQ(result.survivable_failures, 10u);
    EXPECT_NEAR(result.goodput, (10000.0 - 100.0) / 10000.0, 1e-9);
}

TEST(JitGoodputTest, FullClusterLossIsCatastrophic)
{
    PreemptionTrace trace;
    trace.duration = 10000;
    trace.events.push_back({100.0, 64});  // everything preempted
    JitInputs inputs;
    inputs.total_vms = 64;
    inputs.replicas = 2;
    inputs.throughput = 1.0;
    Rng rng(1);
    const auto result = replay_jit_goodput(trace, inputs, rng);
    EXPECT_EQ(result.catastrophic_failures, 1u);
}

TEST(JitGoodputTest, BulkierBurstsIncreaseCatastrophes)
{
    JitInputs inputs;
    inputs.total_vms = 64;
    inputs.replicas = 2;
    inputs.throughput = 1.0;
    auto catastrophes = [&inputs](int burst) {
        SpotProfile profile = gcp_a100_profile();
        profile.burst_probability = burst > 1 ? 0.5 : 0.0;
        profile.burst_max = burst;
        const auto trace = generate_trace(profile, 4);
        Rng rng(4);
        return replay_jit_goodput(trace, inputs, rng)
            .catastrophic_failures;
    };
    EXPECT_LE(catastrophes(1), catastrophes(16));
    EXPECT_LE(catastrophes(16), catastrophes(48));
    EXPECT_GT(catastrophes(48), 0u);
}

// ---------------------------------------------------------- direct path

TEST(DirectPathTest, ProducesValidCheckpoints)
{
    SimGpu gpu(fast_gpu());
    TrainingState state(gpu, 64 * 1024);
    MemStorage device(SlotStore::required_size(3, 64 * 1024));
    PCcheckConfig config;
    config.direct_to_storage = true;
    PCcheckCheckpointer checkpointer(state, device, config);
    for (std::uint64_t i = 1; i <= 6; ++i) {
        checkpointer.before_update(i);
        state.stamp(i);
        checkpointer.request_checkpoint(i);
    }
    checkpointer.finish();
    EXPECT_EQ(checkpointer.stats().completed, 6u);
    std::vector<std::uint8_t> buffer;
    const auto recovered = recover_to_buffer(device, &buffer);
    ASSERT_TRUE(recovered.has_value());
    EXPECT_EQ(recovered->iteration, 6u);
    EXPECT_EQ(TrainingState::verify_buffer(buffer.data(), buffer.size()),
              std::make_optional<std::uint64_t>(6));
}

TEST(DirectPathTest, StagedOverlapsButDirectDoesNot)
{
    // With a slow persist channel, the staged path releases the
    // training loop after the fast GPU→DRAM copy, while the direct
    // path keeps the snapshot (and hence before_update) blocked for
    // the full device write.
    auto run = [](bool direct) {
        SimGpu gpu(fast_gpu());
        TrainingState state(gpu, 64 * 1024);
        ThrottledStorage device(
            std::make_unique<MemStorage>(
                SlotStore::required_size(3, 64 * 1024)),
            /*write=*/2e6, /*persist=*/0, /*read=*/0);  // ~33 ms
        PCcheckConfig config;
        config.direct_to_storage = direct;
        PCcheckCheckpointer checkpointer(state, device, config);
        state.stamp(1);
        checkpointer.request_checkpoint(1);
        Stopwatch watch;
        checkpointer.before_update(2);
        const Seconds stall = watch.elapsed();
        checkpointer.finish();
        return stall;
    };
    const Seconds staged_stall = run(false);
    const Seconds direct_stall = run(true);
    EXPECT_GT(direct_stall, 0.02);
    EXPECT_LT(staged_stall, direct_stall / 2);
}

// ------------------------------------------------------------------ CXL

TEST(CxlTest, BehavesLikePmem)
{
    EXPECT_TRUE(needs_fence(StorageKind::kCxlPmem));
    CrashSimStorage device(8192, StorageKind::kCxlPmem, 1, 0.0);
    EXPECT_EQ(device.line_size(), 64u);
    std::uint8_t byte = 0x42;
    PCCHECK_MUST(device.write(0, &byte, 1));
    PCCHECK_MUST(device.persist(0, 1));
    device.crash();  // not fenced: lost
    std::uint8_t out = 0xFF;
    PCCHECK_MUST(device.read(0, &out, 1));
    EXPECT_EQ(out, 0);
}

TEST(CxlTest, BandwidthBelowLocalPmem)
{
    const auto cxl = paper_bandwidth(StorageKind::kCxlPmem);
    const auto local = paper_bandwidth(StorageKind::kPmemNt);
    EXPECT_LT(cxl.write_bytes_per_sec, local.write_bytes_per_sec);
    EXPECT_GT(cxl.write_bytes_per_sec, 0);
}

TEST(CxlTest, EndToEndCheckpointing)
{
    SimGpu gpu(fast_gpu());
    TrainingState state(gpu, 32 * 1024);
    CrashSimStorage device(SlotStore::required_size(3, 32 * 1024),
                           StorageKind::kCxlPmem, 2, 0.5);
    {
        PCcheckConfig config;
        PCcheckCheckpointer checkpointer(state, device, config);
        for (std::uint64_t i = 1; i <= 4; ++i) {
            checkpointer.before_update(i);
            state.stamp(i);
            checkpointer.request_checkpoint(i);
        }
        checkpointer.finish();
    }
    device.crash();
    std::vector<std::uint8_t> buffer;
    const auto recovered = recover_to_buffer(device, &buffer);
    ASSERT_TRUE(recovered.has_value());
    EXPECT_GE(recovered->iteration, 1u);
}

// -------------------------------------------------------------- metrics

TEST(MetricsTest, CounterAccumulates)
{
    MetricsRegistry registry;
    Counter& counter = registry.counter("test.counter");
    counter.add();
    counter.add(41);
    EXPECT_EQ(counter.value(), 42u);
    // Same name returns the same counter.
    EXPECT_EQ(registry.counter("test.counter").value(), 42u);
}

TEST(MetricsTest, GaugeHoldsLastValue)
{
    MetricsRegistry registry;
    registry.gauge("test.gauge").set(1.5);
    registry.gauge("test.gauge").set(2.5);
    EXPECT_DOUBLE_EQ(registry.gauge("test.gauge").value(), 2.5);
}

TEST(MetricsTest, SnapshotAndDumpSorted)
{
    MetricsRegistry registry;
    registry.counter("b.count").add(2);
    registry.counter("a.count").add(1);
    registry.gauge("c.gauge").set(3);
    const auto snapshot = registry.snapshot();
    ASSERT_EQ(snapshot.size(), 3u);
    EXPECT_EQ(snapshot[0].first, "a.count");
    EXPECT_EQ(snapshot[1].first, "b.count");
    std::ostringstream oss;
    registry.dump(oss);
    EXPECT_NE(oss.str().find("a.count = 1"), std::string::npos);
}

TEST(MetricsTest, ResetZeroes)
{
    MetricsRegistry registry;
    registry.counter("x").add(9);
    registry.reset();
    EXPECT_EQ(registry.counter("x").value(), 0u);
}

TEST(MetricsTest, OrchestratorPublishesMetrics)
{
    const std::uint64_t before = MetricsRegistry::global()
                                     .counter("pccheck.checkpoints.completed")
                                     .value();
    SimGpu gpu(fast_gpu());
    TrainingState state(gpu, 16 * 1024);
    MemStorage device(SlotStore::required_size(3, 16 * 1024));
    PCcheckConfig config;
    PCcheckCheckpointer checkpointer(state, device, config);
    state.stamp(1);
    checkpointer.request_checkpoint(1);
    checkpointer.finish();
    EXPECT_EQ(MetricsRegistry::global()
                  .counter("pccheck.checkpoints.completed")
                  .value(),
              before + 1);
}

}  // namespace
}  // namespace pccheck
