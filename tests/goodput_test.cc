/**
 * @file
 * Tests for the goodput module: §4.2 recovery bounds, §5.2.3 replay,
 * Table 1 footprints, and the analytical throughput model.
 */

#include <gtest/gtest.h>

#include "goodput/analytic.h"
#include "goodput/footprint.h"
#include "goodput/goodput.h"
#include "goodput/recovery_model.h"
#include "trace/preemption_trace.h"
#include "util/check.h"

namespace pccheck {
namespace {

TEST(RecoveryModelTest, PaperBounds)
{
    RecoveryModelInputs in;
    in.iteration_time = 0.1;
    in.interval = 10;
    in.checkpoint_time = 0.5;  // Tw/t = 5 iterations
    in.load_time = 2.0;
    in.concurrent = 2;
    // PCcheck: l + f·t + t·min(N·f, Tw/t) = 2 + 1 + 0.1·min(20,5) = 3.5.
    EXPECT_NEAR(pccheck_max_recovery(in), 3.5, 1e-9);
    // CheckFreq/Gemini: l + 2·f·t = 4.
    EXPECT_NEAR(one_async_max_recovery(in), 4.0, 1e-9);
    // GPM: l + f·t = 3.
    EXPECT_NEAR(sync_max_recovery(in), 3.0, 1e-9);
}

TEST(RecoveryModelTest, PccheckBoundCappedByConcurrency)
{
    RecoveryModelInputs in;
    in.iteration_time = 1.0;
    in.interval = 2;
    in.checkpoint_time = 100.0;  // Tw/t = 100 iterations, N·f = 4
    in.load_time = 0.0;
    in.concurrent = 2;
    EXPECT_NEAR(pccheck_max_recovery(in), 2.0 + 4.0, 1e-9);
}

TEST(RecoveryModelTest, ExpectedIsLoadPlusHalfSpan)
{
    RecoveryModelInputs in;
    in.iteration_time = 0.1;
    in.interval = 10;
    in.checkpoint_time = 0.5;
    in.load_time = 2.0;
    in.concurrent = 2;
    EXPECT_NEAR(expected_recovery("gpm", in), 2.0 + 0.5, 1e-9);
    EXPECT_NEAR(expected_recovery("checkfreq", in), 2.0 + 1.0, 1e-9);
    EXPECT_NEAR(expected_recovery("pccheck", in), 2.0 + 0.75, 1e-9);
    EXPECT_THROW(expected_recovery("unknown", in), FatalError);
}

TEST(GoodputTest, NoFailuresMeansFullThroughput)
{
    PreemptionTrace trace;
    trace.duration = 1000.0;
    GoodputInputs inputs;
    inputs.throughput = 2.0;
    inputs.expected_recovery = 100.0;
    const auto result = replay_goodput(trace, inputs);
    EXPECT_DOUBLE_EQ(result.goodput, 2.0);
    EXPECT_EQ(result.failures, 0u);
}

TEST(GoodputTest, FailuresReduceGoodputProportionally)
{
    PreemptionTrace trace;
    trace.duration = 1000.0;
    trace.events = {{100, 1}, {500, 1}};
    GoodputInputs inputs;
    inputs.throughput = 2.0;
    inputs.expected_recovery = 94.5;
    inputs.reattach_time = 5.5;
    // rec = 2 × 100 = 200 → prog = 800 → goodput = 1600/1000 = 1.6.
    const auto result = replay_goodput(trace, inputs);
    EXPECT_DOUBLE_EQ(result.goodput, 1.6);
    EXPECT_DOUBLE_EQ(result.recovery_total, 200.0);
}

TEST(GoodputTest, RecoveryCannotExceedDuration)
{
    PreemptionTrace trace;
    trace.duration = 100.0;
    for (int i = 0; i < 50; ++i) {
        trace.events.push_back({i * 2.0, 1});
    }
    GoodputInputs inputs;
    inputs.throughput = 1.0;
    inputs.expected_recovery = 10.0;
    const auto result = replay_goodput(trace, inputs);
    EXPECT_DOUBLE_EQ(result.goodput, 0.0);  // clamped, not negative
}

TEST(FootprintTest, MatchesTable1)
{
    const auto checkfreq = model_footprint("checkfreq");
    EXPECT_DOUBLE_EQ(checkfreq.dram_max, 1.0);
    EXPECT_DOUBLE_EQ(checkfreq.storage, 2.0);

    const auto gpm = model_footprint("gpm");
    EXPECT_DOUBLE_EQ(gpm.dram_max, 0.0);
    EXPECT_DOUBLE_EQ(gpm.storage, 2.0);

    const auto gemini = model_footprint("gemini", 1, 0.03);
    EXPECT_DOUBLE_EQ(gemini.storage, 0.0);
    EXPECT_GT(gemini.gpu_mem, 1.0);

    const auto pccheck = model_footprint("pccheck", 3);
    EXPECT_DOUBLE_EQ(pccheck.storage, 4.0);  // (N+1)·m
    EXPECT_DOUBLE_EQ(pccheck.dram_min, 1.0);
    EXPECT_DOUBLE_EQ(pccheck.dram_max, 2.0);

    EXPECT_THROW(model_footprint("nope"), FatalError);
}

AnalyticInputs
opt13b_inputs(std::uint64_t interval)
{
    AnalyticInputs in;
    in.iteration_time = 2.0;
    in.checkpoint_bytes = static_cast<Bytes>(16.2e9);
    in.interval = interval;
    in.per_writer_bytes_per_sec = 1.2e9;
    return in;
}

TEST(AnalyticTest, IdealIsUnaffectedByInterval)
{
    EXPECT_DOUBLE_EQ(analytic_throughput("ideal", opt13b_inputs(1)), 0.5);
    EXPECT_DOUBLE_EQ(analytic_throughput("ideal", opt13b_inputs(100)),
                     0.5);
}

TEST(AnalyticTest, OrderingAtHighFrequency)
{
    // Checkpointing every iteration: PCcheck > CheckFreq > sync, and
    // every system is below ideal.
    const auto in = opt13b_inputs(1);
    const double ideal = analytic_throughput("ideal", in);
    const double pccheck = analytic_throughput("pccheck", in);
    const double checkfreq = analytic_throughput("checkfreq", in);
    const double sync = analytic_throughput("sync", in);
    EXPECT_LT(pccheck, ideal);
    EXPECT_GT(pccheck, checkfreq);
    EXPECT_GT(checkfreq, sync);
}

TEST(AnalyticTest, AllSystemsApproachIdealAtLowFrequency)
{
    const auto in = opt13b_inputs(1000);
    for (const char* system :
         {"pccheck", "checkfreq", "gpm", "gemini", "sync"}) {
        const double throughput = analytic_throughput(system, in);
        EXPECT_GT(throughput, 0.45) << system;
        EXPECT_LE(throughput, 0.5 + 1e-9) << system;
    }
}

TEST(AnalyticTest, ConcurrencyRaisesPccheckThroughput)
{
    auto in = opt13b_inputs(5);
    in.concurrent = 1;
    const double n1 = analytic_throughput("pccheck", in);
    in.concurrent = 4;
    const double n4 = analytic_throughput("pccheck", in);
    EXPECT_GE(n4, n1);
}

TEST(AnalyticTest, GeminiGatedByNetworkBandwidth)
{
    // At f=1 the transfer gates the period (c + m/net > f·t).
    auto in = opt13b_inputs(1);
    in.network_bytes_per_sec = 1.88e9;
    const double slow_net = analytic_throughput("gemini", in);
    in.network_bytes_per_sec = 100e9;  // datacenter-grade network
    const double fast_net = analytic_throughput("gemini", in);
    EXPECT_GT(fast_net, slow_net);
}

TEST(AnalyticTest, CheckpointTimeComposition)
{
    const auto in = opt13b_inputs(10);
    // CheckFreq pays serialization; PCcheck does not.
    EXPECT_GT(analytic_checkpoint_time("checkfreq", in),
              analytic_checkpoint_time("pccheck", in));
    // Gemini writes no storage: Tw = m / network.
    EXPECT_NEAR(analytic_checkpoint_time("gemini", in), 16.2 / 1.88,
                0.01);
}

TEST(AnalyticGoodputIntegrationTest, PccheckWinsOnSpotTrace)
{
    // Fig. 2 shape: on the GCP trace PCcheck's goodput at f=10 beats
    // CheckFreq's at any comparable frequency.
    const auto trace = generate_trace(gcp_a100_profile(), 42);
    auto evaluate = [&trace](const std::string& system,
                             std::uint64_t interval) {
        const auto in = opt13b_inputs(interval);
        RecoveryModelInputs rec;
        rec.iteration_time = in.iteration_time;
        rec.interval = interval;
        rec.checkpoint_time = analytic_checkpoint_time(
            system == "ideal" ? "pccheck" : system, in);
        rec.load_time = 16.2 / 0.9;  // m / read bandwidth
        rec.concurrent = in.concurrent;
        GoodputInputs gp;
        gp.throughput = analytic_throughput(system, in);
        gp.expected_recovery = expected_recovery(
            system == "ideal" ? "pccheck" : system, rec);
        return replay_goodput(trace, gp).goodput;
    };
    const double pccheck = evaluate("pccheck", 10);
    const double checkfreq = evaluate("checkfreq", 10);
    EXPECT_GT(pccheck, checkfreq);
}

}  // namespace
}  // namespace pccheck
