/**
 * @file
 * Tests for the baseline checkpointers (sync, CheckFreq, GPM, Gemini):
 * correctness of the persisted state and their characteristic
 * blocking behaviour versus PCcheck.
 */

#include <gtest/gtest.h>

#include <vector>

#include "baselines/checkfreq.h"
#include "baselines/gemini.h"
#include "baselines/gpm.h"
#include "baselines/sync_checkpoint.h"
#include "core/orchestrator.h"
#include "core/recovery.h"
#include "core/slot_store.h"
#include "storage/mem_storage.h"
#include "storage/throttled_storage.h"
#include "trainsim/models.h"
#include "trainsim/training_loop.h"
#include "trainsim/training_state.h"
#include "util/check.h"

namespace pccheck {
namespace {

constexpr Bytes kStateBytes = 64 * 1024;

GpuConfig
gpu_config(double pcie = 0)
{
    GpuConfig config;
    config.memory_bytes = 2 * kMiB;
    config.pcie_bytes_per_sec = pcie;
    return config;
}

Bytes
device_bytes()
{
    return SlotStore::required_size(2, kStateBytes);
}

TEST(SyncCheckpointerTest, PersistsVerifiableState)
{
    SimGpu gpu(gpu_config());
    TrainingState state(gpu, kStateBytes);
    MemStorage device(device_bytes());
    SyncCheckpointer checkpointer(state, device);
    state.stamp(3);
    checkpointer.request_checkpoint(3);
    const auto stats = checkpointer.stats();
    EXPECT_EQ(stats.completed, 1u);
    EXPECT_GT(stats.stall_time, 0.0);

    std::vector<std::uint8_t> buffer;
    const auto recovered = recover_to_buffer(device, &buffer);
    ASSERT_TRUE(recovered.has_value());
    EXPECT_EQ(recovered->iteration, 3u);
    EXPECT_EQ(TrainingState::verify_buffer(buffer.data(), buffer.size()),
              std::make_optional<std::uint64_t>(3));
}

TEST(SyncCheckpointerTest, SerializationCostAddsStall)
{
    SimGpu gpu(gpu_config());
    TrainingState state(gpu, kStateBytes);
    MemStorage device_fast(device_bytes());
    MemStorage device_slow(device_bytes());

    SyncCheckpointer fast(state, device_fast);
    state.stamp(1);
    fast.request_checkpoint(1);

    BaselineConfig config;
    config.serialize_bytes_per_sec = 2e6;  // 64 KiB ≈ 33 ms
    SyncCheckpointer slow(state, device_slow, config);
    state.stamp(2);
    slow.request_checkpoint(2);

    EXPECT_GT(slow.stats().stall_time,
              fast.stats().stall_time + 0.02);
}

TEST(CheckFreqTest, PersistsLatestOfManyCheckpoints)
{
    SimGpu gpu(gpu_config());
    TrainingState state(gpu, kStateBytes);
    MemStorage device(device_bytes());
    {
        CheckFreqCheckpointer checkpointer(state, device);
        for (std::uint64_t i = 1; i <= 8; ++i) {
            checkpointer.before_update(i);
            state.stamp(i);
            checkpointer.request_checkpoint(i);
        }
        checkpointer.finish();
        EXPECT_EQ(checkpointer.stats().completed, 8u);
    }
    std::vector<std::uint8_t> buffer;
    const auto recovered = recover_to_buffer(device, &buffer);
    ASSERT_TRUE(recovered.has_value());
    EXPECT_EQ(recovered->iteration, 8u);
    EXPECT_EQ(TrainingState::verify_buffer(buffer.data(), buffer.size()),
              std::make_optional<std::uint64_t>(8));
}

TEST(CheckFreqTest, SecondCheckpointWaitsForFirstPersist)
{
    SimGpu gpu(gpu_config());
    TrainingState state(gpu, kStateBytes);
    // Slow persist channel: ~33 ms per 64 KiB checkpoint.
    ThrottledStorage device(std::make_unique<MemStorage>(device_bytes()),
                            0, 2e6, 0);
    CheckFreqCheckpointer checkpointer(state, device);
    state.stamp(1);
    checkpointer.request_checkpoint(1);
    Stopwatch watch;
    state.stamp(2);
    checkpointer.request_checkpoint(2);  // must stall behind persist 1
    EXPECT_GE(watch.elapsed(), 0.02);
    checkpointer.finish();
    EXPECT_GE(checkpointer.stats().stall_time, 0.02);
}

TEST(CheckFreqTest, PCcheckDoesNotStallWhereCheckFreqDoes)
{
    // Identical slow-persist setup; PCcheck's request returns without
    // waiting for the previous persist (the headline difference).
    SimGpu gpu(gpu_config());
    TrainingState state(gpu, kStateBytes);
    ThrottledStorage device(
        std::make_unique<MemStorage>(
            SlotStore::required_size(3, kStateBytes)),
        0, 2e6, 0);
    PCcheckConfig config;
    config.concurrent_checkpoints = 2;
    PCcheckCheckpointer checkpointer(state, device, config);
    state.stamp(1);
    checkpointer.request_checkpoint(1);
    checkpointer.before_update(2);
    state.stamp(2);
    Stopwatch watch;
    checkpointer.request_checkpoint(2);
    EXPECT_LT(watch.elapsed(), 0.01);  // no persist-completion wait
    checkpointer.finish();
}

TEST(GpmTest, StallsTrainingForWholeCheckpoint)
{
    // PCIe throttled so the direct copy takes a visible time.
    SimGpu gpu(gpu_config(5e6));  // 64 KiB ≈ 13 ms
    TrainingState state(gpu, kStateBytes);
    MemStorage device(device_bytes());
    GpmCheckpointer checkpointer(state, device);
    state.stamp(4);
    Stopwatch watch;
    checkpointer.request_checkpoint(4);
    EXPECT_GE(watch.elapsed(), 0.01);
    const auto stats = checkpointer.stats();
    EXPECT_EQ(stats.completed, 1u);
    EXPECT_GE(stats.stall_time, 0.01);

    std::vector<std::uint8_t> buffer;
    const auto recovered = recover_to_buffer(device, &buffer);
    ASSERT_TRUE(recovered.has_value());
    EXPECT_EQ(recovered->iteration, 4u);
    EXPECT_EQ(TrainingState::verify_buffer(buffer.data(), buffer.size()),
              std::make_optional<std::uint64_t>(4));
}

TEST(GeminiTest, SnapshotsLandOnPeerMemory)
{
    SimGpu gpu(gpu_config());
    TrainingState state(gpu, kStateBytes);
    NetworkConfig net_config;
    net_config.nodes = 2;
    net_config.nic_bytes_per_sec = 0;
    net_config.latency = 0;
    SimNetwork network(net_config);
    MemStorage peer_memory(kStateBytes);
    {
        GeminiCheckpointer checkpointer(state, network, 0, 1, peer_memory);
        for (std::uint64_t i = 1; i <= 5; ++i) {
            checkpointer.before_update(i);
            state.stamp(i);
            checkpointer.request_checkpoint(i);
        }
        checkpointer.finish();
        EXPECT_EQ(checkpointer.stats().completed, 5u);
        EXPECT_EQ(checkpointer.latest_remote_iteration(), 5u);
    }
    EXPECT_EQ(TrainingState::verify_buffer(peer_memory.raw(), kStateBytes),
              std::make_optional<std::uint64_t>(5));
}

TEST(GeminiTest, NetworkBandwidthGatesNextCheckpoint)
{
    SimGpu gpu(gpu_config());
    TrainingState state(gpu, kStateBytes);
    NetworkConfig net_config;
    net_config.nodes = 2;
    net_config.nic_bytes_per_sec = 2e6;  // 64 KiB ≈ 33 ms
    net_config.latency = 0;
    SimNetwork network(net_config);
    MemStorage peer_memory(kStateBytes);
    GeminiCheckpointer checkpointer(state, network, 0, 1, peer_memory);
    state.stamp(1);
    checkpointer.request_checkpoint(1);
    Stopwatch watch;
    state.stamp(2);
    checkpointer.request_checkpoint(2);  // waits for transfer 1
    EXPECT_GE(watch.elapsed(), 0.02);
    checkpointer.finish();
}

/** End-to-end sanity: under a fast device all baselines keep training
 *  correct and complete the requested checkpoints. */
TEST(BaselinesIntegrationTest, AllSystemsTrainAndPersist)
{
    const ScaledModel model =
        scale_model(model_by_name("vgg16"), ScaleFactors{60.0, 20000.0});

    for (int system = 0; system < 3; ++system) {
        SimGpu gpu(gpu_config());
        TrainingState state(gpu, kStateBytes);
        MemStorage device(device_bytes());
        TrainingLoop loop(gpu, state, model);
        std::unique_ptr<Checkpointer> checkpointer;
        switch (system) {
          case 0:
            checkpointer =
                std::make_unique<SyncCheckpointer>(state, device);
            break;
          case 1:
            checkpointer =
                std::make_unique<CheckFreqCheckpointer>(state, device);
            break;
          case 2:
            checkpointer = std::make_unique<GpmCheckpointer>(state, device);
            break;
        }
        const TrainingResult result = loop.run(20, 5, *checkpointer);
        EXPECT_EQ(result.checkpointer.completed, 4u);
        std::vector<std::uint8_t> buffer;
        const auto recovered = recover_to_buffer(device, &buffer);
        ASSERT_TRUE(recovered.has_value());
        EXPECT_EQ(recovered->iteration, 20u);
    }
}

}  // namespace
}  // namespace pccheck
