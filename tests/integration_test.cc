/**
 * @file
 * End-to-end integration tests:
 *  - full train → crash → recover → resume cycles on the adversarial
 *    crash-sim device and on a real file;
 *  - pipeline-parallel cluster training with per-node PCcheck
 *    orchestrators and the rank-0 consistency protocol (I5);
 *  - Gemini in the same cluster harness.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/gemini.h"
#include "core/cluster.h"
#include "core/orchestrator.h"
#include "core/recovery.h"
#include "core/slot_store.h"
#include "storage/crash_sim.h"
#include "storage/file_storage.h"
#include "storage/mem_storage.h"
#include "trainsim/models.h"
#include "trainsim/training_loop.h"
#include "util/rng.h"

namespace pccheck {
namespace {

constexpr Bytes kStateBytes = 64 * 1024;

GpuConfig
fast_gpu()
{
    GpuConfig config;
    config.memory_bytes = 2 * kMiB;
    config.pcie_bytes_per_sec = 0;
    return config;
}

ScaledModel
tiny_model(double time_scale = 600.0)
{
    return scale_model(model_by_name("vgg16"),
                       ScaleFactors{time_scale, 20000.0});
}

TEST(IntegrationTest, TrainCrashRecoverResume)
{
    CrashSimStorage device(SlotStore::required_size(3, kStateBytes),
                           StorageKind::kPmemNt, 99, 0.5);
    std::uint64_t crashed_at = 0;
    {
        SimGpu gpu(fast_gpu());
        TrainingState state(gpu, kStateBytes);
        PCcheckConfig config;
        config.concurrent_checkpoints = 2;
        PCcheckCheckpointer checkpointer(state, device, config);
        TrainingLoop loop(gpu, state, tiny_model());
        loop.run(17, 3, checkpointer);
        checkpointer.finish();
        crashed_at = 17;
        // Process "dies" here; the device loses everything volatile.
    }
    device.crash();

    // A fresh process recovers and resumes training.
    SimGpu gpu(fast_gpu());
    TrainingState state(gpu, kStateBytes);
    const auto recovered = recover_into_state(device, state);
    ASSERT_TRUE(recovered.has_value());
    // Checkpoints were taken at 3,6,9,12,15; at least the last one the
    // orchestrator drained must be recovered.
    EXPECT_GE(recovered->iteration, 3u);
    EXPECT_LE(recovered->iteration, crashed_at);
    EXPECT_EQ(recovered->iteration % 3, 0u);

    // Resume: reformat is NOT needed — reuse the same device.
    PCcheckConfig config;
    config.concurrent_checkpoints = 2;
    PCcheckCheckpointer checkpointer(state, device, config);
    TrainingLoop loop(gpu, state, tiny_model());
    loop.run(5, 2, checkpointer, recovered->iteration + 1);
    checkpointer.finish();
    EXPECT_EQ(state.iteration(), recovered->iteration + 5);
}

TEST(IntegrationTest, RepeatedCrashesNeverLoseAllProgress)
{
    // Crash-storm: run a few iterations, crash, recover, repeat. The
    // recovered iteration must never regress (I2) and always verify.
    CrashSimStorage device(SlotStore::required_size(3, kStateBytes),
                           StorageKind::kPmemNt, 7, 0.4);
    std::uint64_t resume_from = 0;
    for (int round = 0; round < 5; ++round) {
        SimGpu gpu(fast_gpu());
        TrainingState state(gpu, kStateBytes);
        if (round > 0) {
            const auto recovered = recover_into_state(device, state);
            ASSERT_TRUE(recovered.has_value()) << "round " << round;
            EXPECT_GE(recovered->iteration, resume_from)
                << "round " << round;
            resume_from = recovered->iteration;
        }
        PCcheckConfig config;
        config.concurrent_checkpoints = 2;
        PCcheckCheckpointer checkpointer(state, device, config);
        TrainingLoop loop(gpu, state, tiny_model());
        loop.run(6, 2, checkpointer, resume_from + 1);
        checkpointer.finish();
        // Remember the last checkpoint we know completed.
        const auto latest =
            checkpointer.commit_protocol().latest_pointer();
        ASSERT_TRUE(latest.has_value());
        resume_from = latest->iteration;
        device.crash();
    }
    EXPECT_GE(resume_from, 10u);
}

TEST(IntegrationTest, FileBackedSurvivesProcessBoundary)
{
    const std::string path = "/tmp/pccheck_integration_file.bin";
    {
        SimGpu gpu(fast_gpu());
        TrainingState state(gpu, kStateBytes);
        FileStorage device(path, SlotStore::required_size(4, kStateBytes));
        PCcheckConfig config;
        config.concurrent_checkpoints = 3;
        config.chunk_bytes = 16 * 1024;
        PCcheckCheckpointer checkpointer(state, device, config);
        TrainingLoop loop(gpu, state, tiny_model());
        loop.run(12, 4, checkpointer);
    }
    {
        SimGpu gpu(fast_gpu());
        TrainingState state(gpu, kStateBytes);
        FileStorage device(path, SlotStore::required_size(4, kStateBytes));
        const auto recovered = recover_into_state(device, state);
        ASSERT_TRUE(recovered.has_value());
        EXPECT_EQ(recovered->iteration, 12u);
    }
    std::remove(path.c_str());
}

TEST(IntegrationTest, PipelineClusterConsistentCheckpoints)
{
    ClusterConfig config;
    config.nodes = 3;
    config.stage_time = 0.002;
    config.partition_bytes = 32 * 1024;
    config.activation_bytes = 2 * 1024;
    config.gpu = fast_gpu();
    config.network.nic_bytes_per_sec = 0;
    config.network.latency = 0;
    config.coordinate = true;

    PipelineCluster cluster(config);
    // Per-node device + orchestrator.
    std::vector<std::unique_ptr<MemStorage>> devices(3);
    std::vector<PCcheckCheckpointer*> orchestrators(3, nullptr);
    const auto factory =
        [&](const ClusterNode& node) -> PipelineCluster::NodeCheckpointer {
        const auto index = static_cast<std::size_t>(node.rank);
        devices[index] = std::make_unique<MemStorage>(
            SlotStore::required_size(3, config.partition_bytes));
        PCcheckConfig pc;
        pc.concurrent_checkpoints = 2;
        auto checkpointer = std::make_unique<PCcheckCheckpointer>(
            *node.state, *devices[index], pc);
        PCcheckCheckpointer* raw = checkpointer.get();
        orchestrators[index] = raw;
        return {std::move(checkpointer), [raw] {
                    const auto latest =
                        raw->commit_protocol().latest_pointer();
                    return latest ? latest->iteration : 0;
                }};
    };
    const ClusterResult result = cluster.run(15, 5, factory);
    EXPECT_GT(result.throughput, 0);
    // After the final coordination round every partition is at the
    // agreed iteration or newer (I5).
    EXPECT_GT(result.consistent_iteration, 0u);
    EXPECT_EQ(result.consistent_iteration % 5, 0u);
    for (std::size_t rank = 0; rank < 3; ++rank) {
        std::vector<std::uint8_t> buffer;
        const auto recovered =
            recover_to_buffer(*devices[rank], &buffer);
        ASSERT_TRUE(recovered.has_value());
        EXPECT_GE(recovered->iteration, result.consistent_iteration);
        EXPECT_EQ(
            TrainingState::verify_buffer(buffer.data(), buffer.size()),
            std::make_optional(recovered->iteration));
    }
}

TEST(IntegrationTest, GeminiInClusterReplicatesToPeers)
{
    ClusterConfig config;
    config.nodes = 2;
    config.stage_time = 0.002;
    config.partition_bytes = 32 * 1024;
    config.activation_bytes = 1024;
    config.gpu = fast_gpu();
    config.network.nic_bytes_per_sec = 0;
    config.network.latency = 0;
    config.coordinate = false;  // Gemini has no rank-0 protocol here

    PipelineCluster cluster(config);
    std::vector<std::unique_ptr<MemStorage>> peer_memory(2);
    std::vector<GeminiCheckpointer*> geminis(2, nullptr);
    const auto factory =
        [&](const ClusterNode& node) -> PipelineCluster::NodeCheckpointer {
        const auto index = static_cast<std::size_t>(node.rank);
        peer_memory[index] =
            std::make_unique<MemStorage>(config.partition_bytes);
        const int peer = (node.rank + 1) % 2;
        auto checkpointer = std::make_unique<GeminiCheckpointer>(
            *node.state, *node.network, node.rank, peer,
            *peer_memory[index]);
        geminis[index] = checkpointer.get();
        return {std::move(checkpointer), nullptr};
    };
    const ClusterResult result = cluster.run(12, 4, factory);
    for (std::size_t rank = 0; rank < 2; ++rank) {
        EXPECT_EQ(result.node_stats[rank].completed, 3u);
        // The peer's DRAM holds this node's final snapshot.
        EXPECT_EQ(TrainingState::verify_buffer(
                      peer_memory[rank]->raw(), config.partition_bytes),
                  std::make_optional<std::uint64_t>(12));
    }
}

}  // namespace
}  // namespace pccheck
