/**
 * @file
 * Tests for the virtual-time timeline simulator: schedule legality,
 * the characteristic stalls of each discipline (Figs. 3/4/6/7), and
 * agreement with the §3.4 runtime model.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/timeline.h"

namespace pccheck {
namespace {

TimelineParams
base_params()
{
    TimelineParams params;
    params.train_time = 0.9;
    params.update_time = 0.1;
    params.snapshot_time = 0.5;
    params.persist_time = 2.0;
    params.iterations = 8;
    params.interval = 1;
    params.concurrent = 2;
    return params;
}

/** No two phases on the same resource may overlap. */
void
expect_no_resource_overlap(const Timeline& timeline)
{
    auto overlaps = [&timeline](PhaseKind a, PhaseKind b) {
        for (const auto& x : timeline.phases) {
            if (x.kind != a) {
                continue;
            }
            for (const auto& y : timeline.phases) {
                if (&x == &y || y.kind != b) {
                    continue;
                }
                if (x.start < y.end - 1e-12 && y.start < x.end - 1e-12) {
                    return true;
                }
            }
        }
        return false;
    };
    // GPU compute: T and U never overlap each other.
    EXPECT_FALSE(overlaps(PhaseKind::kTrain, PhaseKind::kTrain));
    EXPECT_FALSE(overlaps(PhaseKind::kTrain, PhaseKind::kUpdate));
    EXPECT_FALSE(overlaps(PhaseKind::kUpdate, PhaseKind::kUpdate));
    // Copy engine and storage channel are single resources.
    EXPECT_FALSE(overlaps(PhaseKind::kSnapshot, PhaseKind::kSnapshot));
    EXPECT_FALSE(overlaps(PhaseKind::kPersist, PhaseKind::kPersist));
}

TEST(TimelineTest, SyncSerializesEverything)
{
    const Timeline timeline =
        simulate_timeline(Discipline::kSync, base_params());
    expect_no_resource_overlap(timeline);
    // Makespan = A · (t + c + Tw) exactly.
    EXPECT_NEAR(timeline.makespan, 8 * (1.0 + 0.5 + 2.0), 1e-9);
}

TEST(TimelineTest, GpmSkipsSnapshotPhase)
{
    const Timeline timeline =
        simulate_timeline(Discipline::kGpm, base_params());
    const bool any_snapshot = std::any_of(
        timeline.phases.begin(), timeline.phases.end(),
        [](const Phase& p) { return p.kind == PhaseKind::kSnapshot; });
    EXPECT_FALSE(any_snapshot);
    EXPECT_NEAR(timeline.makespan, 8 * (1.0 + 2.0), 1e-9);
}

TEST(TimelineTest, CheckFreqFasterThanSyncSlowerThanPCcheck)
{
    const auto params = base_params();
    const Seconds sync =
        simulate_timeline(Discipline::kSync, params).makespan;
    const Seconds checkfreq =
        simulate_timeline(Discipline::kCheckFreq, params).makespan;
    const Seconds pccheck =
        simulate_timeline(Discipline::kPCcheck, params).makespan;
    EXPECT_LT(checkfreq, sync);
    EXPECT_LT(pccheck, checkfreq);
}

TEST(TimelineTest, CheckFreqGatedByPersist)
{
    // Fig. 4: with Tw >> f·t, CheckFreq's period per checkpoint is
    // c + Tw (next C waits for previous P).
    const auto params = base_params();
    const Timeline timeline =
        simulate_timeline(Discipline::kCheckFreq, params);
    // Steady state: P_k ends at 3.5 + 2.5·(k−1) (period c + Tw), so
    // the 8th persist completes at 21.0.
    EXPECT_NEAR(timeline.makespan, 21.0, 0.25);
}

TEST(TimelineTest, PCcheckOverlapsNPersists)
{
    // Fig. 6: with Tw = 2 > f·t = 1 and a bandwidth-bound channel,
    // N=1 pays period c + Tw = 2.5 (the next snapshot waits for its
    // slot), while N=2 hides the snapshot behind the second slot and
    // runs at the channel rate Tw = 2.0 per checkpoint.
    auto params = base_params();
    params.iterations = 20;
    const Timeline n2 = simulate_timeline(Discipline::kPCcheck, params);
    params.concurrent = 1;
    const Timeline n1 = simulate_timeline(Discipline::kPCcheck, params);
    EXPECT_LT(n2.makespan, n1.makespan * 0.85);
    expect_no_resource_overlap(n2);
}

TEST(TimelineTest, MoreConcurrencyNeverHurts)
{
    auto params = base_params();
    params.iterations = 16;
    Seconds prev = 1e9;
    for (int n : {1, 2, 3, 4}) {
        params.concurrent = n;
        const Seconds makespan =
            simulate_timeline(Discipline::kPCcheck, params).makespan;
        EXPECT_LE(makespan, prev + 1e-9) << "N=" << n;
        prev = makespan;
    }
}

TEST(TimelineTest, PipeliningReducesMakespan)
{
    auto params = base_params();
    params.iterations = 12;
    params.snapshot_time = 1.0;  // make the C/P overlap meaningful
    const Seconds mono =
        simulate_timeline(Discipline::kPCcheck, params).makespan;
    params.chunks = 4;
    params.staging_buffers = 4;
    const Seconds piped =
        simulate_timeline(Discipline::kPCcheck, params).makespan;
    EXPECT_LE(piped, mono + 1e-9);
}

TEST(TimelineTest, InfrequentCheckpointsApproachIdeal)
{
    auto params = base_params();
    params.iterations = 100;
    params.interval = 50;
    const Timeline timeline =
        simulate_timeline(Discipline::kPCcheck, params);
    const Seconds ideal = 100 * 1.0;
    EXPECT_LT(timeline.makespan, ideal * 1.1);
}

TEST(TimelineTest, GpuStallAccounting)
{
    const Timeline timeline =
        simulate_timeline(Discipline::kSync, base_params());
    EXPECT_NEAR(timeline.gpu_busy, 8 * 1.0, 1e-9);
    EXPECT_NEAR(timeline.gpu_stall, 8 * 2.5, 1e-9);
}

TEST(TimelineTest, RenderProducesThreeRows)
{
    const Timeline timeline =
        simulate_timeline(Discipline::kPCcheck, base_params());
    const std::string art = timeline.render(0.5);
    EXPECT_NE(art.find("GPU"), std::string::npos);
    EXPECT_NE(art.find("COPY"), std::string::npos);
    EXPECT_NE(art.find("STORE"), std::string::npos);
    EXPECT_NE(art.find('T'), std::string::npos);
    EXPECT_NE(art.find('P'), std::string::npos);
}

TEST(TimelineTest, PaperRuntimeModelTracksSimulatedPCcheck)
{
    // In the stall regime (Tw > N·f·t) the §3.4 runtime_2 model should
    // be within ~25% of the constructed schedule.
    auto params = base_params();
    params.iterations = 40;
    params.persist_time = 4.0;
    params.snapshot_time = 0.25;
    const Timeline timeline =
        simulate_timeline(Discipline::kPCcheck, params);
    const Seconds model = paper_runtime_model(params);
    EXPECT_NEAR(timeline.makespan / model, 1.0, 0.25);
}

}  // namespace
}  // namespace pccheck
