/**
 * @file
 * Tests for the simulated cluster network: bandwidth pacing, latency,
 * mailboxes, and multi-node messaging.
 */

#include <gtest/gtest.h>

#include <thread>

#include "net/network.h"
#include "util/clock.h"

namespace pccheck {
namespace {

NetworkConfig
config(int nodes, double bw, Seconds latency = 0)
{
    NetworkConfig cfg;
    cfg.nodes = nodes;
    cfg.nic_bytes_per_sec = bw;
    cfg.latency = latency;
    return cfg;
}

TEST(SimNetworkTest, TransferPaysBandwidth)
{
    SimNetwork net(config(2, 10e6));
    Stopwatch watch;
    net.transfer(0, 1, 200'000);  // ~20 ms at 10 MB/s
    EXPECT_GE(watch.elapsed(), 0.015);
    EXPECT_EQ(net.bytes_moved(), 200'000u);
}

TEST(SimNetworkTest, TransferPaysLatency)
{
    SimNetwork net(config(2, 0, 0.01));
    Stopwatch watch;
    net.transfer(0, 1, 1);
    EXPECT_GE(watch.elapsed(), 0.008);
}

TEST(SimNetworkTest, SelfTransferSkipsNic)
{
    SimNetwork net(config(2, 1e3));  // 1 KB/s — would take forever
    Stopwatch watch;
    net.transfer(0, 0, 100'000);
    EXPECT_LT(watch.elapsed(), 0.1);
}

TEST(SimNetworkTest, MailboxDeliversInOrder)
{
    SimNetwork net(config(2, 0));
    net.send_msg(0, 1, 10);
    net.send_msg(0, 1, 20);
    EXPECT_EQ(net.recv_msg(1).tag, 10u);
    EXPECT_EQ(net.recv_msg(1).tag, 20u);
}

TEST(SimNetworkTest, TryRecvNonBlocking)
{
    SimNetwork net(config(2, 0));
    NetMessage msg;
    EXPECT_FALSE(net.try_recv_msg(0, &msg));
    net.send_msg(1, 0, 7, {1, 2, 3});
    EXPECT_TRUE(net.try_recv_msg(0, &msg));
    EXPECT_EQ(msg.from, 1);
    EXPECT_EQ(msg.tag, 7u);
    EXPECT_EQ(msg.payload.size(), 3u);
}

TEST(SimNetworkTest, BlockingRecvWakesOnSend)
{
    SimNetwork net(config(2, 0));
    std::thread receiver([&net] {
        const NetMessage msg = net.recv_msg(1);
        EXPECT_EQ(msg.tag, 42u);
    });
    MonotonicClock::instance().sleep_for(0.005);
    net.send_msg(0, 1, 42);
    receiver.join();
}

TEST(SimNetworkTest, SendersShareEgressNic)
{
    SimNetwork net(config(3, 10e6));
    Stopwatch watch;
    std::thread a([&net] { net.transfer(0, 1, 100'000); });
    std::thread b([&net] { net.transfer(0, 2, 100'000); });
    a.join();
    b.join();
    // Both leave node 0: the shared egress NIC makes this ~20 ms.
    EXPECT_GE(watch.elapsed(), 0.015);
}

TEST(SimNetworkTest, InvalidNodeAborts)
{
    SimNetwork net(config(2, 0));
    EXPECT_DEATH(net.transfer(0, 5, 1), "invalid node");
}

TEST(SimNetworkTest, RecvForReturnsQueuedMessageImmediately)
{
    SimNetwork net(config(2, 0));
    net.send_msg(0, 1, 5, {9});
    const auto msg = net.recv_msg_for(1, 0.5);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->tag, 5u);
    EXPECT_EQ(msg->payload.size(), 1u);
}

TEST(SimNetworkTest, RecvForTimesOutOnSilence)
{
    SimNetwork net(config(2, 0));
    Stopwatch watch;
    const auto msg = net.recv_msg_for(0, 0.02);
    EXPECT_FALSE(msg.has_value());
    // The deadline is against the modeled clock, so the wait is
    // bounded: well past the timeout, well under a blocking hang.
    EXPECT_GE(watch.elapsed(), 0.015);
    EXPECT_LT(watch.elapsed(), 1.0);
}

TEST(SimNetworkTest, RecvForWakesOnLateSend)
{
    SimNetwork net(config(2, 0));
    std::thread receiver([&net] {
        const auto msg = net.recv_msg_for(1, 5.0);
        ASSERT_TRUE(msg.has_value());
        EXPECT_EQ(msg->tag, 42u);
        EXPECT_EQ(msg->from, 0);
    });
    MonotonicClock::instance().sleep_for(0.005);
    net.send_msg(0, 1, 42);
    receiver.join();
}

}  // namespace
}  // namespace pccheck
