/**
 * @file
 * Unit tests for the fault-injection subsystem: FaultPlan parsing and
 * schedules, FaultInjector determinism, the FaultyStorage decorator's
 * error/passthrough semantics, and the deterministic exponential
 * backoff + bounded retry loop the persist path is built on.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "faults/fault.h"
#include "faults/faulty_storage.h"
#include "faults/retry.h"
#include "storage/mem_storage.h"
#include "util/check.h"
#include "util/metrics.h"

namespace pccheck {
namespace {

TEST(FaultPlanTest, ParsesFullGrammar)
{
    const FaultPlan plan = FaultPlan::parse(
        "storage.persist:transient@p=0.01;"
        "*:crash@nth=1234;"
        "storage.write:stall=0.005@every=100,limit=3;"
        "storage.fence:permanent@window=10-20");
    ASSERT_EQ(plan.rules().size(), 4u);

    const FaultRule& a = plan.rules()[0];
    EXPECT_EQ(a.point, "storage.persist");
    EXPECT_EQ(a.action, FaultAction::kTransient);
    EXPECT_EQ(a.trigger, FaultTrigger::kProbability);
    EXPECT_DOUBLE_EQ(a.probability, 0.01);

    const FaultRule& b = plan.rules()[1];
    EXPECT_EQ(b.point, "*");
    EXPECT_EQ(b.action, FaultAction::kCrash);
    EXPECT_EQ(b.trigger, FaultTrigger::kNthOp);
    EXPECT_EQ(b.nth, 1234u);

    const FaultRule& c = plan.rules()[2];
    EXPECT_EQ(c.action, FaultAction::kStall);
    EXPECT_DOUBLE_EQ(c.stall_seconds, 0.005);
    EXPECT_EQ(c.trigger, FaultTrigger::kEveryNthOp);
    EXPECT_EQ(c.nth, 100u);
    EXPECT_EQ(c.limit, 3u);

    const FaultRule& d = plan.rules()[3];
    EXPECT_EQ(d.action, FaultAction::kPermanent);
    EXPECT_EQ(d.trigger, FaultTrigger::kOpWindow);
    EXPECT_EQ(d.window_lo, 10u);
    EXPECT_EQ(d.window_hi, 20u);
}

TEST(FaultPlanTest, ParsesReadCorruptionActions)
{
    const FaultPlan plan = FaultPlan::parse(
        "storage.read:bitflip=0x04@nth=7,limit=1;"
        "storage.read:unreadable@p=0.05");
    ASSERT_EQ(plan.rules().size(), 2u);

    const FaultRule& flip = plan.rules()[0];
    EXPECT_EQ(flip.point, "storage.read");
    EXPECT_EQ(flip.action, FaultAction::kBitflip);
    EXPECT_EQ(flip.bitflip_mask, 0x04u);
    EXPECT_EQ(flip.trigger, FaultTrigger::kNthOp);
    EXPECT_EQ(flip.nth, 7u);
    EXPECT_EQ(flip.limit, 1u);

    const FaultRule& dead = plan.rules()[1];
    EXPECT_EQ(dead.point, "storage.read");
    EXPECT_EQ(dead.action, FaultAction::kUnreadable);
    EXPECT_EQ(dead.trigger, FaultTrigger::kProbability);
    EXPECT_DOUBLE_EQ(dead.probability, 0.05);

    // Decimal masks parse too.
    const FaultPlan dec = FaultPlan::parse("p:bitflip=128@nth=1");
    EXPECT_EQ(dec.rules()[0].bitflip_mask, 0x80u);
}

TEST(FaultPlanTest, RejectsMalformedSpecs)
{
    EXPECT_THROW(FaultPlan::parse("nocolon@nth=1"), FatalError);
    EXPECT_THROW(FaultPlan::parse("p:transient"), FatalError);
    EXPECT_THROW(FaultPlan::parse("p:explode@nth=1"), FatalError);
    EXPECT_THROW(FaultPlan::parse("p:stall@nth=1"), FatalError);
    EXPECT_THROW(FaultPlan::parse("p:transient=3@nth=1"), FatalError);
    EXPECT_THROW(FaultPlan::parse("p:transient@sometimes=1"), FatalError);
    EXPECT_THROW(FaultPlan::parse("p:transient@window=9"), FatalError);
    EXPECT_THROW(FaultPlan::parse("p:transient@nth=1,retries=2"),
                 FatalError);
    // bitflip needs a mask that is a non-zero byte.
    EXPECT_THROW(FaultPlan::parse("p:bitflip@nth=1"), FatalError);
    EXPECT_THROW(FaultPlan::parse("p:bitflip=0@nth=1"), FatalError);
    EXPECT_THROW(FaultPlan::parse("p:bitflip=256@nth=1"), FatalError);
    EXPECT_THROW(FaultPlan::parse("p:bitflip=zz@nth=1"), FatalError);
    // unreadable takes no argument.
    EXPECT_THROW(FaultPlan::parse("p:unreadable=1@nth=1"), FatalError);
}

TEST(FaultInjectorTest, NthOpFiresExactlyOnce)
{
    FaultRule rule;
    rule.action = FaultAction::kTransient;
    rule.trigger = FaultTrigger::kNthOp;
    rule.nth = 3;
    FaultInjector injector(1, FaultPlan{}.add(rule));
    std::vector<bool> failed;
    for (int i = 0; i < 6; ++i) {
        failed.push_back(!injector.on_op("storage.write").ok());
    }
    EXPECT_EQ(failed, (std::vector<bool>{false, false, true, false,
                                         false, false}));
    EXPECT_EQ(injector.ops(), 6u);
    EXPECT_EQ(injector.injected(), 1u);
}

TEST(FaultInjectorTest, EveryNthRespectsLimit)
{
    FaultRule rule;
    rule.trigger = FaultTrigger::kEveryNthOp;
    rule.nth = 2;
    rule.limit = 2;
    FaultInjector injector(1, FaultPlan{}.add(rule));
    int fired = 0;
    for (int i = 0; i < 10; ++i) {
        if (!injector.on_op("storage.write").ok()) {
            ++fired;
        }
    }
    EXPECT_EQ(fired, 2);  // ops 2 and 4; the limit stops 6, 8, 10
}

TEST(FaultInjectorTest, WindowCoversInclusiveRange)
{
    FaultRule rule;
    rule.trigger = FaultTrigger::kOpWindow;
    rule.window_lo = 4;
    rule.window_hi = 6;
    FaultInjector injector(1, FaultPlan{}.add(rule));
    int fired = 0;
    for (int i = 1; i <= 8; ++i) {
        if (!injector.on_op("storage.write").ok()) {
            ++fired;
            EXPECT_GE(injector.ops(), 4u);
            EXPECT_LE(injector.ops(), 6u);
        }
    }
    EXPECT_EQ(fired, 3);
}

TEST(FaultInjectorTest, ProbabilityScheduleIsSeedDeterministic)
{
    FaultRule rule;
    rule.trigger = FaultTrigger::kProbability;
    rule.probability = 0.2;
    const auto firing_pattern = [&rule](std::uint64_t seed) {
        FaultInjector injector(seed, FaultPlan{}.add(rule));
        std::vector<bool> pattern;
        for (int i = 0; i < 200; ++i) {
            pattern.push_back(!injector.on_op("storage.write").ok());
        }
        return pattern;
    };
    const auto a = firing_pattern(7);
    EXPECT_EQ(a, firing_pattern(7));      // replayable
    EXPECT_NE(a, firing_pattern(8));      // seed actually matters
    const auto fired = static_cast<double>(
        std::count(a.begin(), a.end(), true));
    EXPECT_GT(fired, 200 * 0.05);
    EXPECT_LT(fired, 200 * 0.5);
}

TEST(FaultInjectorTest, PointFilterAndFirstMatchWins)
{
    FaultRule persist_only;
    persist_only.point = "storage.persist";
    persist_only.action = FaultAction::kPermanent;
    persist_only.trigger = FaultTrigger::kOpWindow;
    persist_only.window_lo = 1;
    persist_only.window_hi = 100;
    FaultRule any;
    any.point = "*";
    any.action = FaultAction::kTransient;
    any.trigger = FaultTrigger::kOpWindow;
    any.window_lo = 1;
    any.window_hi = 100;
    FaultInjector injector(
        1, FaultPlan{}.add(persist_only).add(any));
    // Writes skip the first rule and hit the wildcard transient.
    EXPECT_TRUE(injector.on_op("storage.write").is_transient());
    // Persists match the first (permanent) rule — first match wins.
    EXPECT_TRUE(injector.on_op("storage.persist").is_permanent());
}

TEST(FaultInjectorTest, CrashFiresHandlerAndOpProceeds)
{
    FaultRule rule;
    rule.action = FaultAction::kCrash;
    rule.trigger = FaultTrigger::kNthOp;
    rule.nth = 2;
    rule.limit = 1;
    FaultInjector injector(1, FaultPlan{}.add(rule));
    int handler_calls = 0;
    injector.set_crash_handler([&handler_calls] { ++handler_calls; });
    EXPECT_TRUE(injector.on_op("storage.write").ok());
    EXPECT_TRUE(injector.on_op("storage.write").ok());  // crash fires
    EXPECT_TRUE(injector.on_op("storage.write").ok());
    EXPECT_EQ(handler_calls, 1);
    EXPECT_EQ(injector.crashes(), 1u);
}

TEST(FaultyStorageTest, InjectedErrorNeverTouchesInnerDevice)
{
    FaultRule rule;
    rule.point = kFaultStorageWrite;
    rule.action = FaultAction::kTransient;
    rule.trigger = FaultTrigger::kNthOp;
    rule.nth = 1;
    auto injector =
        std::make_shared<FaultInjector>(1, FaultPlan{}.add(rule));
    FaultyStorage device(std::make_unique<MemStorage>(64), injector);

    const std::uint8_t payload[4] = {0xAA, 0xBB, 0xCC, 0xDD};
    EXPECT_TRUE(device.write(0, payload, sizeof(payload)).is_transient());
    std::uint8_t check[4] = {};
    PCCHECK_MUST(device.read(0, check, sizeof(check)));
    EXPECT_EQ(check[0], 0);  // the failed write never happened

    // Second attempt (the rule fired already) goes through.
    PCCHECK_MUST(device.write(0, payload, sizeof(payload)));
    PCCHECK_MUST(device.read(0, check, sizeof(check)));
    EXPECT_EQ(check[0], 0xAA);
    PCCHECK_MUST(device.persist(0, sizeof(payload)));
    PCCHECK_MUST(device.fence());
}

TEST(BackoffTest, DelayIsPureFunctionOfSeedAndAttempt)
{
    const RetryPolicy policy;
    const Backoff a(policy, 99);
    const Backoff b(policy, 99);
    for (int attempt = 0; attempt < 8; ++attempt) {
        EXPECT_DOUBLE_EQ(a.delay(attempt), b.delay(attempt))
            << "attempt " << attempt;
    }
    // Order independence: evaluating out of order changes nothing.
    const double third = a.delay(3);
    (void)a.delay(0);
    (void)a.delay(7);
    EXPECT_DOUBLE_EQ(a.delay(3), third);
    // A different seed gives a different (jittered) timeline.
    const Backoff c(policy, 100);
    bool any_different = false;
    for (int attempt = 0; attempt < 8; ++attempt) {
        any_different = any_different ||
                        a.delay(attempt) != c.delay(attempt);
    }
    EXPECT_TRUE(any_different);
}

TEST(BackoffTest, DelaysGrowExponentiallyWithinBounds)
{
    RetryPolicy policy;
    policy.base_delay = 100e-6;
    policy.multiplier = 2.0;
    policy.max_delay = 500e-6;
    policy.jitter = 0.25;
    const Backoff backoff(policy, 7);
    for (int attempt = 0; attempt < 6; ++attempt) {
        const double nominal =
            std::min(policy.base_delay *
                         std::pow(policy.multiplier, attempt),
                     policy.max_delay);
        const double d = backoff.delay(attempt);
        EXPECT_GE(d, nominal * (1.0 - policy.jitter)) << attempt;
        EXPECT_LE(d, nominal * (1.0 + policy.jitter)) << attempt;
    }
}

TEST(RetryTest, TransientErrorsRetryUntilSuccess)
{
    RetryPolicy policy;
    policy.base_delay = 1e-6;  // keep the test fast
    policy.max_delay = 2e-6;
    const Backoff backoff(policy, 3);
    const std::uint64_t errors_before =
        MetricsRegistry::global()
            .counter("pccheck.storage.transient_errors")
            .value();
    const std::uint64_t retries_before =
        MetricsRegistry::global()
            .counter("pccheck.storage.retries")
            .value();
    int calls = 0;
    const StorageStatus status = retry_storage_op(
        [&calls] {
            ++calls;
            return calls < 3
                       ? StorageStatus::transient_error("test.flaky")
                       : StorageStatus::success();
        },
        backoff);
    EXPECT_TRUE(status.ok());
    EXPECT_EQ(calls, 3);
    EXPECT_EQ(MetricsRegistry::global()
                      .counter("pccheck.storage.transient_errors")
                      .value() -
                  errors_before,
              2u);
    EXPECT_EQ(MetricsRegistry::global()
                      .counter("pccheck.storage.retries")
                      .value() -
                  retries_before,
              2u);
}

TEST(RetryTest, PermanentErrorShortCircuits)
{
    RetryPolicy policy;
    policy.base_delay = 1e-6;
    const Backoff backoff(policy, 3);
    int calls = 0;
    const StorageStatus status = retry_storage_op(
        [&calls] {
            ++calls;
            return StorageStatus::permanent_error("test.dead");
        },
        backoff);
    EXPECT_TRUE(status.is_permanent());
    EXPECT_EQ(calls, 1);  // permanents are never retried
}

TEST(RetryTest, ExhaustionReturnsLastTransientError)
{
    RetryPolicy policy;
    policy.max_attempts = 3;
    policy.base_delay = 1e-6;
    policy.max_delay = 2e-6;
    const Backoff backoff(policy, 3);
    int calls = 0;
    const StorageStatus status = retry_storage_op(
        [&calls] {
            ++calls;
            return StorageStatus::transient_error("test.flaky");
        },
        backoff);
    EXPECT_TRUE(status.is_transient());
    EXPECT_EQ(calls, 3);
    EXPECT_STREQ(status.context(), "test.flaky");
}

}  // namespace
}  // namespace pccheck
