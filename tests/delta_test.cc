/**
 * @file
 * Incremental (delta-log) tier tests — docs/DELTA_LOG.md:
 *  - DirtyTracker chunk accounting (collect / restore / adopt);
 *  - DeltaLog append + replay round trips and the stop-at-first-torn
 *    rules: torn payload mid-record, dead header between records,
 *    stale-epoch frames, a reopened device's stale chain, and GC
 *    racing an in-flight replay;
 *  - recover_latest over a SlotStore device: empty log, chain replay,
 *    and fallback to an older full checkpoint whose chain is gone;
 *  - orchestrator-level request_delta: no-durable-base and log-full
 *    skips, and a full train → crash → recover → resume cycle.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "core/orchestrator.h"
#include "core/recovery.h"
#include "core/slot_store.h"
#include "delta/delta_log.h"
#include "delta/dirty_tracker.h"
#include "storage/crash_sim.h"
#include "storage/mem_storage.h"
#include "trainsim/models.h"
#include "trainsim/training_loop.h"
#include "util/check.h"
#include "util/crc32.h"

namespace pccheck {
namespace {

// ---------------------------------------------------------------- DirtyTracker

TEST(DirtyTracker, MarksCollectsAndClears)
{
    DirtyTracker tracker(/*total=*/1024, /*chunk=*/256);
    EXPECT_EQ(tracker.chunk_count(), 4u);
    tracker.mark(0, 1);       // chunk 0
    tracker.mark(255, 2);     // chunks 0 and 1
    tracker.mark(768, 256);   // chunk 3
    EXPECT_EQ(tracker.collect_frame(),
              (std::vector<std::uint32_t>{0, 1, 3}));
    // The collect cleared the since-frame set.
    EXPECT_TRUE(tracker.collect_frame().empty());
}

TEST(DirtyTracker, RestoreUndoesAFailedCollect)
{
    DirtyTracker tracker(1024, 256);
    tracker.mark(512, 1);
    auto frame = tracker.collect_frame();
    EXPECT_EQ(frame, (std::vector<std::uint32_t>{2}));
    // Append failed: hand the chunks back; the next frame re-carries
    // them merged with anything dirtied meanwhile.
    tracker.mark(0, 1);
    tracker.restore(frame);
    EXPECT_EQ(tracker.collect_frame(),
              (std::vector<std::uint32_t>{0, 2}));
}

TEST(DirtyTracker, AdoptingUnknownBaseReturnsEverything)
{
    DirtyTracker tracker(1024, 256);
    tracker.mark(0, 1);
    // Counter 9 was never a candidate: the tracker cannot know what
    // changed since it, so the first frame must carry the whole state.
    const auto all = tracker.adopt_base(9);
    EXPECT_EQ(all.size(), tracker.chunk_count());
}

TEST(DirtyTracker, AdoptedCandidateCarriesSinceCheckpointSet)
{
    DirtyTracker tracker(1024, 256);
    tracker.begin_candidate(5);  // snapshot of counter 5 taken here
    tracker.mark(256, 1);        // dirtied while 5 persists
    tracker.collect_frame();     // frame consumed the since-frame set
    const auto since = tracker.adopt_base(5);
    // Everything dirtied since the snapshot — including chunks already
    // carried by frames of the previous epoch — seeds the new epoch.
    EXPECT_EQ(since, (std::vector<std::uint32_t>{1}));
}

// -------------------------------------------------------------------- DeltaLog

constexpr Bytes kRegionOff = 128;
constexpr Bytes kRegionBytes = 4096;
constexpr Bytes kImageBytes = 1024;

struct LogFixture {
    MemStorage device{kRegionOff + kRegionBytes};
    DeltaRegion region{kRegionOff, kRegionBytes};
    DeltaLog log{device, region};
};

/** One-chunk frame payload, deterministic in (seq, len). */
std::vector<std::uint8_t> chunk_fill(std::uint64_t seq, Bytes len)
{
    std::vector<std::uint8_t> data(len);
    for (Bytes j = 0; j < len; ++j) {
        data[j] = static_cast<std::uint8_t>(seq * 7 + j);
    }
    return data;
}

TEST(DeltaLog, RoundTripAppendReplay)
{
    LogFixture f;
    f.log.reset_epoch(/*base_counter=*/3, /*base_iteration=*/30);
    const auto d1 = chunk_fill(1, 100);
    const auto d2 = chunk_fill(2, 64);
    ASSERT_TRUE(f.log.append(31, {{0, 100}}, d1.data()).ok());
    ASSERT_TRUE(f.log.append(32, {{512, 64}}, d2.data()).ok());
    EXPECT_EQ(f.log.last_sealed_seq(), 2u);
    EXPECT_EQ(f.log.last_iteration(), 32u);

    std::vector<std::uint8_t> image(kImageBytes, 0xEE);
    const DeltaReplayStats stats = delta_replay(
        f.device, f.region, 3, 30, image.data(), image.size());
    EXPECT_EQ(stats.frames_applied, 2u);
    EXPECT_EQ(stats.iteration, 32u);
    EXPECT_EQ(stats.bytes_applied, 164u);
    EXPECT_TRUE(std::equal(d1.begin(), d1.end(), image.begin()));
    EXPECT_TRUE(std::equal(d2.begin(), d2.end(), image.begin() + 512));
    EXPECT_EQ(image[200], 0xEE);  // untouched bytes stay
}

TEST(DeltaLog, EmptyRegionReplayIsANoop)
{
    MemStorage device(256);
    std::vector<std::uint8_t> image(kImageBytes, 0xAA);
    const DeltaReplayStats stats = delta_replay(
        device, DeltaRegion{0, 0}, 1, 10, image.data(), image.size());
    EXPECT_EQ(stats.frames_applied, 0u);
    EXPECT_EQ(stats.iteration, 10u);
}

TEST(DeltaLog, EmptyFramesAdvanceIterationOnly)
{
    LogFixture f;
    f.log.reset_epoch(1, 10);
    ASSERT_TRUE(f.log.append(11, {}, nullptr).ok());
    ASSERT_TRUE(f.log.append(12, {}, nullptr).ok());
    std::vector<std::uint8_t> image(kImageBytes, 0);
    const DeltaReplayStats stats = delta_replay(
        f.device, f.region, 1, 10, image.data(), image.size());
    EXPECT_EQ(stats.frames_applied, 2u);
    EXPECT_EQ(stats.iteration, 12u);
    EXPECT_EQ(stats.bytes_applied, 0u);
}

TEST(DeltaLog, TornPayloadMidRecordStopsAtPrefix)
{
    LogFixture f;
    f.log.reset_epoch(1, 10);
    const auto d1 = chunk_fill(1, 100);
    const auto d2 = chunk_fill(2, 100);
    ASSERT_TRUE(f.log.append(11, {{0, 100}}, d1.data()).ok());
    const Bytes frame2 = DeltaLog::frame_bytes(1, 100);
    ASSERT_TRUE(f.log.append(12, {{100, 100}}, d2.data()).ok());
    // Flip one payload byte of the SEALED second frame: a torn write
    // inside a record. Its payload CRC must reject the whole frame.
    std::uint8_t byte = 0;
    const Bytes victim =
        kRegionOff + frame2 + DeltaLog::kFrameAlign + 16 + 50;
    PCCHECK_MUST(f.device.read(victim, &byte, 1));
    byte ^= 0xFF;
    ASSERT_TRUE(f.device.write(victim, &byte, 1).ok());

    std::vector<std::uint8_t> image(kImageBytes, 0);
    const DeltaReplayStats stats = delta_replay(
        f.device, f.region, 1, 10, image.data(), image.size());
    EXPECT_EQ(stats.frames_applied, 1u);  // frame 1 intact, 2 rejected
    EXPECT_EQ(stats.iteration, 11u);
    EXPECT_TRUE(std::equal(d1.begin(), d1.end(), image.begin()));
    EXPECT_EQ(image[150], 0);  // none of frame 2 leaked through
}

TEST(DeltaLog, DeadHeaderBetweenRecordsStopsCleanly)
{
    LogFixture f;
    f.log.reset_epoch(1, 10);
    const auto d1 = chunk_fill(1, 100);
    const auto d2 = chunk_fill(2, 100);
    ASSERT_TRUE(f.log.append(11, {{0, 100}}, d1.data()).ok());
    const Bytes frame2 = DeltaLog::frame_bytes(1, 100);
    ASSERT_TRUE(f.log.append(12, {{100, 100}}, d2.data()).ok());
    // Kill frame 2's header outright — a crash between records.
    const std::uint8_t dead[DeltaLog::kFrameAlign] = {};
    ASSERT_TRUE(
        f.device.write(kRegionOff + frame2, dead, sizeof(dead)).ok());

    std::vector<std::uint8_t> image(kImageBytes, 0);
    const DeltaReplayStats stats = delta_replay(
        f.device, f.region, 1, 10, image.data(), image.size());
    EXPECT_EQ(stats.frames_applied, 1u);
    EXPECT_EQ(stats.iteration, 11u);
}

TEST(DeltaLog, StaleEpochFramesDieAfterReset)
{
    LogFixture f;
    f.log.reset_epoch(1, 10);
    const auto d1 = chunk_fill(1, 100);
    ASSERT_TRUE(f.log.append(11, {{0, 100}}, d1.data()).ok());
    ASSERT_TRUE(f.log.append(12, {{0, 100}}, d1.data()).ok());
    // GC: epoch 2 starts; no media write happened, yet replay against
    // base 2 must apply nothing (base_counter mismatch at seq 1).
    f.log.reset_epoch(2, 20);
    std::vector<std::uint8_t> image(kImageBytes, 0);
    DeltaReplayStats stats = delta_replay(f.device, f.region, 2, 20,
                                          image.data(), image.size());
    EXPECT_EQ(stats.frames_applied, 0u);
    // And after one epoch-2 append, replay against base 1 dies too.
    ASSERT_TRUE(f.log.append(21, {{0, 100}}, d1.data()).ok());
    stats = delta_replay(f.device, f.region, 1, 10, image.data(),
                         image.size());
    EXPECT_EQ(stats.frames_applied, 0u);
}

TEST(DeltaLog, ReopenedDeviceStaleChainIsTruncated)
{
    LogFixture f;
    // Previous process: three frames on base 5, all durable.
    f.log.reset_epoch(5, 50);
    const auto stale = chunk_fill(9, 100);
    ASSERT_TRUE(f.log.append(51, {{0, 100}}, stale.data()).ok());
    ASSERT_TRUE(f.log.append(52, {{100, 100}}, stale.data()).ok());
    ASSERT_TRUE(f.log.append(53, {{200, 100}}, stale.data()).ok());

    // Crash + restart: recovery resumed from full checkpoint 5 at
    // iteration 50 (the frames above were NOT recovered — e.g. the
    // operator restored the base snapshot), so the new process appends
    // a DIVERGENT frame 1 on the SAME base counter.
    DeltaLog reopened(f.device, f.region);
    reopened.reset_epoch(5, 50);
    const auto fresh = chunk_fill(1, 100);
    ASSERT_TRUE(reopened.append(51, {{512, 100}}, fresh.data()).ok());

    // The stale chain's tail must be unreachable: without the
    // truncating seal, stale frame 2 (seq 2, iteration 52 > 51) would
    // satisfy every replay rule and splice the old timeline onto the
    // new one.
    std::vector<std::uint8_t> image(kImageBytes, 0);
    const DeltaReplayStats stats = delta_replay(
        f.device, f.region, 5, 50, image.data(), image.size());
    EXPECT_EQ(stats.frames_applied, 1u);
    EXPECT_EQ(stats.iteration, 51u);
    EXPECT_TRUE(std::equal(fresh.begin(), fresh.end(),
                           image.begin() + 512));
    EXPECT_EQ(image[100], 0);  // stale frame 2's chunk never applied
}

TEST(DeltaLog, GcRacingInFlightReplayStopsCleanly)
{
    LogFixture f;
    f.log.reset_epoch(7, 70);
    const auto data = chunk_fill(3, 40);
    ASSERT_TRUE(f.log.append(71, {{0, 40}}, data.data()).ok());
    ASSERT_TRUE(f.log.append(72, {{100, 40}}, data.data()).ok());
    ASSERT_TRUE(f.log.append(73, {{200, 40}}, data.data()).ok());

    // A reader replays the chain while the writer garbage-collects the
    // epoch and appends on the new base, overwriting the region under
    // the reader's feet. The replay must stop at a frame boundary, not
    // splice epoch-8 frames onto the epoch-7 prefix.
    std::vector<std::uint8_t> image(kImageBytes, 0);
    const DeltaReplayStats stats = delta_replay(
        f.device, f.region, 7, 70, image.data(), image.size(),
        [&](const DeltaFrameInfo& info) {
            if (info.seq == 1) {
                f.log.reset_epoch(8, 80);
                PCCHECK_MUST(f.log.append(81, {{300, 40}}, data.data()));
            }
            return true;
        });
    EXPECT_EQ(stats.frames_applied, 1u);
    EXPECT_EQ(stats.iteration, 71u);
    EXPECT_EQ(image[300], 0);  // no epoch-8 content leaked in
}

TEST(DeltaLog, FailedAppendLeavesHeadForRetry)
{
    LogFixture f;
    f.log.reset_epoch(1, 10);
    int failures = 1;
    f.log.set_op_probe([&failures]() {
        if (failures > 0) {
            --failures;
            return StorageStatus::transient_error("injected");
        }
        return StorageStatus::success();
    });
    const auto data = chunk_fill(1, 100);
    EXPECT_FALSE(f.log.append(11, {{0, 100}}, data.data()).ok());
    EXPECT_EQ(f.log.last_sealed_seq(), 0u);
    // Same append again: the head did not advance, so the retry seals
    // frame 1 exactly where the failed attempt would have.
    EXPECT_TRUE(f.log.append(11, {{0, 100}}, data.data()).ok());
    std::vector<std::uint8_t> image(kImageBytes, 0);
    const DeltaReplayStats stats = delta_replay(
        f.device, f.region, 1, 10, image.data(), image.size());
    EXPECT_EQ(stats.frames_applied, 1u);
    EXPECT_EQ(stats.iteration, 11u);
}

// --------------------------------------------------------------- recover_latest

constexpr Bytes kSlotBytes = 1024;
constexpr Bytes kLogBytes = 8192;

std::vector<std::uint8_t> full_image(std::uint64_t counter)
{
    return chunk_fill(counter * 31, kSlotBytes);
}

void publish_full(SlotStore& store, StorageDevice& device,
                  std::uint64_t counter, std::uint64_t iteration,
                  const std::vector<std::uint8_t>& image)
{
    const std::uint32_t slot =
        static_cast<std::uint32_t>(counter % store.slot_count());
    PCCHECK_MUST(store.write_slot(slot, 0, image.data(), image.size()));
    PCCHECK_MUST(store.persist_slot_range(slot, 0, image.size()));
    PCCHECK_MUST(device.fence());
    PCCHECK_MUST(store.publish_pointer(CheckpointPointer{
        counter, slot, image.size(), iteration,
        crc32c(image.data(), image.size())}));
}

TEST(RecoverLatest, EmptyLogRecoversTheFullImage)
{
    MemStorage device(SlotStore::required_size(3, kSlotBytes, kLogBytes));
    SlotStore store = SlotStore::format(device, 3, kSlotBytes, kLogBytes);
    const auto image = full_image(1);
    publish_full(store, device, 1, 10, image);

    std::vector<std::uint8_t> buffer;
    const auto rec = recover_latest(device, &buffer);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->counter, 1u);
    EXPECT_EQ(rec->iteration, 10u);
    EXPECT_EQ(rec->delta_frames, 0u);
    EXPECT_EQ(buffer, image);
}

TEST(RecoverLatest, ReplaysTheChainOnTopOfTheFullImage)
{
    MemStorage device(SlotStore::required_size(3, kSlotBytes, kLogBytes));
    SlotStore store = SlotStore::format(device, 3, kSlotBytes, kLogBytes);
    auto image = full_image(1);
    publish_full(store, device, 1, 10, image);

    DeltaLog log(device, DeltaRegion{store.delta_offset(),
                                     store.delta_bytes()});
    log.reset_epoch(1, 10);
    const auto d1 = chunk_fill(4, 64);
    const auto d2 = chunk_fill(5, 64);
    ASSERT_TRUE(log.append(11, {{0, 64}}, d1.data()).ok());
    ASSERT_TRUE(log.append(12, {{256, 64}}, d2.data()).ok());

    std::vector<std::uint8_t> buffer;
    const auto rec = recover_latest(device, &buffer);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->counter, 1u);
    EXPECT_EQ(rec->iteration, 12u);
    EXPECT_EQ(rec->delta_frames, 2u);
    EXPECT_EQ(rec->delta_seq, 2u);
    std::copy(d1.begin(), d1.end(), image.begin());
    std::copy(d2.begin(), d2.end(), image.begin() + 256);
    EXPECT_EQ(buffer, image);
}

TEST(RecoverLatest, FallbackBaseIgnoresTheNewerChain)
{
    MemStorage device(SlotStore::required_size(3, kSlotBytes, kLogBytes));
    SlotStore store = SlotStore::format(device, 3, kSlotBytes, kLogBytes);
    const auto image1 = full_image(1);
    publish_full(store, device, 1, 10, image1);
    publish_full(store, device, 2, 20, full_image(2));

    DeltaLog log(device, DeltaRegion{store.delta_offset(),
                                     store.delta_bytes()});
    log.reset_epoch(2, 20);
    const auto d = chunk_fill(6, 64);
    ASSERT_TRUE(log.append(21, {{0, 64}}, d.data()).ok());

    // Checkpoint 2's slot data is then lost (bit rot / recycled slot):
    // recovery falls back to checkpoint 1 — and the delta chain, based
    // on counter 2, must NOT replay on top of it.
    std::uint8_t byte = 0xFF;
    PCCHECK_MUST(store.write_slot(2 % 3, 100, &byte, 1));
    std::vector<std::uint8_t> buffer;
    const auto rec = recover_latest(device, &buffer);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->counter, 1u);
    EXPECT_EQ(rec->iteration, 10u);
    EXPECT_EQ(rec->delta_frames, 0u);
    EXPECT_EQ(buffer, image1);
}

// ----------------------------------------------------------- orchestrator tier

constexpr Bytes kStateBytes = 64 * 1024;

GpuConfig fast_gpu()
{
    GpuConfig config;
    config.memory_bytes = 2 * kMiB;
    config.pcie_bytes_per_sec = 0;
    return config;
}

ScaledModel tiny_model()
{
    return scale_model(model_by_name("vgg16"),
                       ScaleFactors{600.0, 20000.0});
}

TEST(DeltaOrchestrator, SkipsWithoutADurableBase)
{
    MemStorage device(
        SlotStore::required_size(3, kStateBytes, 256 * 1024));
    SimGpu gpu(fast_gpu());
    TrainingState state(gpu, kStateBytes);
    PCcheckConfig config;
    config.concurrent_checkpoints = 2;
    config.delta_log_bytes = 256 * 1024;
    PCcheckCheckpointer checkpointer(state, device, config);
    ASSERT_NE(checkpointer.delta_log(), nullptr);

    // No full checkpoint exists yet: there is nothing for a frame to
    // be relative to, so the request is counted and dropped.
    checkpointer.request_delta(1);
    const CheckpointerStats stats = checkpointer.stats();
    EXPECT_EQ(stats.delta_frames, 0u);
    EXPECT_EQ(stats.delta_skipped, 1u);
}

TEST(DeltaOrchestrator, DisabledTierIsANoop)
{
    MemStorage device(SlotStore::required_size(3, kStateBytes));
    SimGpu gpu(fast_gpu());
    TrainingState state(gpu, kStateBytes);
    PCcheckConfig config;
    config.concurrent_checkpoints = 2;
    PCcheckCheckpointer checkpointer(state, device, config);
    EXPECT_EQ(checkpointer.delta_log(), nullptr);
    checkpointer.request_delta(1);  // must not crash or count
    EXPECT_EQ(checkpointer.stats().delta_skipped, 0u);
}

TEST(DeltaOrchestrator, FullLogSkipsInsteadOfWedging)
{
    // A log too small for even one frame: every request is skipped,
    // training proceeds, and recovery still finds the full tier.
    MemStorage device(SlotStore::required_size(3, kStateBytes, 128));
    SimGpu gpu(fast_gpu());
    TrainingState state(gpu, kStateBytes);
    PCcheckConfig config;
    config.concurrent_checkpoints = 2;
    config.delta_log_bytes = 128;
    PCcheckCheckpointer checkpointer(state, device, config);
    TrainingLoop loop(gpu, state, tiny_model());
    loop.set_delta_interval(1);
    loop.set_sparse_updates(0.2, 17);
    loop.run(8, 4, checkpointer);

    const CheckpointerStats stats = checkpointer.stats();
    EXPECT_EQ(stats.delta_frames, 0u);
    EXPECT_GT(stats.delta_skipped, 0u);
    std::vector<std::uint8_t> buffer;
    const auto rec = recover_latest(device, &buffer);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->delta_frames, 0u);
    EXPECT_EQ(rec->iteration % 4, 0u);  // a full-tier checkpoint
}

TEST(DeltaOrchestrator, TrainCrashRecoverResumeRoundTrip)
{
    CrashSimStorage device(
        SlotStore::required_size(3, kStateBytes, 256 * 1024),
        StorageKind::kPmemNt, 23, 0.5);
    {
        SimGpu gpu(fast_gpu());
        TrainingState state(gpu, kStateBytes);
        PCcheckConfig config;
        config.concurrent_checkpoints = 2;
        config.delta_log_bytes = 256 * 1024;
        PCcheckCheckpointer checkpointer(state, device, config);
        TrainingLoop loop(gpu, state, tiny_model());
        loop.set_delta_interval(1);
        loop.set_sparse_updates(0.1, 42);
        loop.run(16, 4, checkpointer);
        EXPECT_GT(checkpointer.stats().delta_frames, 0u);
    }
    device.crash();

    std::vector<std::uint8_t> buffer;
    const auto rec = recover_latest(device, &buffer);
    ASSERT_TRUE(rec.has_value());
    EXPECT_GE(rec->iteration, 4u);   // at least the first full
    EXPECT_LE(rec->iteration, 16u);
    // Every marker is intact and none is newer than the recovered
    // iteration (frames legally leave older stamps behind).
    EXPECT_EQ(TrainingState::verify_buffer_sparse(buffer.data(),
                                                  buffer.size()),
              rec->iteration);

    // Resume: load into a fresh state and train on.
    SimGpu gpu(fast_gpu());
    TrainingState state(gpu, kStateBytes);
    const auto resumed = recover_latest_into_state(device, state);
    ASSERT_TRUE(resumed.has_value());
    EXPECT_EQ(resumed->iteration, rec->iteration);
    EXPECT_EQ(state.iteration(), rec->iteration);
    PCcheckConfig config;
    config.concurrent_checkpoints = 2;
    config.delta_log_bytes = 256 * 1024;
    PCcheckCheckpointer checkpointer(state, device, config);
    TrainingLoop loop(gpu, state, tiny_model());
    loop.set_delta_interval(1);
    loop.set_sparse_updates(0.1, 43);
    loop.run(4, 2, checkpointer, rec->iteration + 1);
    EXPECT_EQ(state.iteration(), rec->iteration + 4);
}

}  // namespace
}  // namespace pccheck
