/**
 * @file
 * Parameterized property sweeps over the analytical layers: the
 * throughput model (goodput/analytic), the §4.2 recovery bounds, the
 * §5.2.3 goodput replay, the §3.4 tuner formula, and the timeline
 * scheduler — cross-cutting invariants that must hold for every
 * (system, model, interval) combination, not just the figures'
 * sampled points.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "goodput/analytic.h"
#include "goodput/goodput.h"
#include "goodput/recovery_model.h"
#include "core/tuner.h"
#include "sim/timeline.h"
#include "trace/preemption_trace.h"
#include "trainsim/models.h"

namespace pccheck {
namespace {

AnalyticInputs
inputs_for(const std::string& model_name, std::uint64_t interval)
{
    const ModelSpec& spec = model_by_name(model_name);
    AnalyticInputs in;
    in.iteration_time = spec.iteration_time;
    in.checkpoint_bytes =
        spec.checkpoint_bytes /
        static_cast<Bytes>(std::max(spec.pipeline_stages, 1));
    in.interval = interval;
    in.per_writer_bytes_per_sec = 1.2e9;
    return in;
}

// -------------------------------------------- analytic model properties

using SystemModel = std::tuple<const char*, const char*>;

class AnalyticProperty : public ::testing::TestWithParam<SystemModel> {};

/** Throughput never exceeds ideal and never hits zero. */
TEST_P(AnalyticProperty, BoundedByIdeal)
{
    const auto [system, model] = GetParam();
    for (const std::uint64_t interval :
         {1ULL, 2ULL, 5ULL, 10ULL, 50ULL, 200ULL, 1000ULL}) {
        const auto in = inputs_for(model, interval);
        const double throughput = analytic_throughput(system, in);
        EXPECT_GT(throughput, 0) << system << "/" << model;
        EXPECT_LE(throughput, analytic_throughput("ideal", in) + 1e-12)
            << system << "/" << model << " f=" << interval;
    }
}

/** Less frequent checkpoints never reduce throughput. */
TEST_P(AnalyticProperty, MonotonicInInterval)
{
    const auto [system, model] = GetParam();
    double previous = 0;
    for (const std::uint64_t interval :
         {1ULL, 2ULL, 5ULL, 10ULL, 25ULL, 50ULL, 100ULL, 500ULL}) {
        const double throughput =
            analytic_throughput(system, inputs_for(model, interval));
        EXPECT_GE(throughput, previous - 1e-12)
            << system << "/" << model << " f=" << interval;
        previous = throughput;
    }
}

/** PCcheck dominates CheckFreq and sync at every frequency. */
TEST_P(AnalyticProperty, PccheckDominatesSingleCheckpointSystems)
{
    const auto [system, model] = GetParam();
    (void)system;
    for (const std::uint64_t interval :
         {1ULL, 5ULL, 10ULL, 50ULL, 100ULL}) {
        const auto in = inputs_for(model, interval);
        const double pccheck = analytic_throughput("pccheck", in);
        EXPECT_GE(pccheck, analytic_throughput("checkfreq", in) - 1e-12)
            << model << " f=" << interval;
        EXPECT_GE(pccheck, analytic_throughput("sync", in) - 1e-12)
            << model << " f=" << interval;
    }
}

INSTANTIATE_TEST_SUITE_P(
    SystemsAndModels, AnalyticProperty,
    ::testing::Combine(::testing::Values("sync", "gpm", "checkfreq",
                                         "gemini", "pccheck"),
                       ::testing::Values("vgg16", "bert", "opt-1.3b",
                                         "bloom-7b")));

// ------------------------------------------------ recovery-bound sweeps

class RecoveryBoundProperty
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

/** Bounds grow with the interval; PCcheck's is capped by Tw/t. */
TEST_P(RecoveryBoundProperty, MonotonicAndCapped)
{
    const auto [concurrent, interval] = GetParam();
    RecoveryModelInputs in;
    in.iteration_time = 0.5;
    in.checkpoint_time = 12.0;  // Tw/t = 24 iterations
    in.load_time = 3.0;
    in.concurrent = concurrent;
    in.interval = interval;
    const Seconds here = pccheck_max_recovery(in);
    in.interval = interval * 2;
    const Seconds coarser = pccheck_max_recovery(in);
    EXPECT_GE(coarser, here);
    // The concurrent-rollback term never exceeds Tw/t iterations.
    in.interval = interval;
    const Seconds cap = in.load_time +
                        static_cast<double>(interval) * 0.5 + 24.0 * 0.5;
    EXPECT_LE(pccheck_max_recovery(in), cap + 1e-9);
    // Expected recovery sits inside [load, max].
    const Seconds expected = expected_recovery("pccheck", in);
    EXPECT_GE(expected, in.load_time);
    EXPECT_LE(expected, pccheck_max_recovery(in));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RecoveryBoundProperty,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values<std::uint64_t>(1, 10, 100)));

// ------------------------------------------------- goodput replay sweep

class GoodputProperty : public ::testing::TestWithParam<std::uint64_t> {};

/** More failures or costlier recovery never increase goodput. */
TEST_P(GoodputProperty, MonotonicInFailureCost)
{
    const std::uint64_t seed = GetParam();
    const auto trace = generate_trace(gcp_a100_profile(), seed);
    GoodputInputs inputs;
    inputs.throughput = 0.5;
    double previous = 1e9;
    for (const Seconds recovery : {10.0, 50.0, 200.0, 1000.0}) {
        inputs.expected_recovery = recovery;
        const double goodput = replay_goodput(trace, inputs).goodput;
        EXPECT_LE(goodput, previous + 1e-12);
        EXPECT_GE(goodput, 0.0);
        EXPECT_LE(goodput, inputs.throughput);
        previous = goodput;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GoodputProperty,
                         ::testing::Values<std::uint64_t>(1, 2, 3, 4, 5));

// ------------------------------------------------------- tuner formula

class TunerFormulaProperty
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

/** f* decreases with N and q, increases with Tw, decreases with t. */
TEST_P(TunerFormulaProperty, Monotonicities)
{
    const auto [n, q] = GetParam();
    const Seconds t = 0.25;
    EXPECT_LE(min_checkpoint_interval(10.0, n + 1, q, t),
              min_checkpoint_interval(10.0, n, q, t));
    EXPECT_LE(min_checkpoint_interval(10.0, n, q + 0.5, t),
              min_checkpoint_interval(10.0, n, q, t));
    EXPECT_GE(min_checkpoint_interval(20.0, n, q, t),
              min_checkpoint_interval(10.0, n, q, t));
    EXPECT_LE(min_checkpoint_interval(10.0, n, q, t * 2),
              min_checkpoint_interval(10.0, n, q, t));
    EXPECT_GE(min_checkpoint_interval(10.0, n, q, t), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TunerFormulaProperty,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(1.01, 1.05, 1.25)));

// ----------------------------------------------- timeline legality sweep

using TimelineCase = std::tuple<Discipline, std::uint64_t, int>;

class TimelineProperty : public ::testing::TestWithParam<TimelineCase> {};

/** Every schedule is legal: GPU work conserved, makespan >= ideal. */
TEST_P(TimelineProperty, ScheduleLegality)
{
    const auto [discipline, interval, chunks] = GetParam();
    TimelineParams params;
    params.train_time = 0.8;
    params.update_time = 0.2;
    params.snapshot_time = 0.4;
    params.persist_time = 1.7;
    params.iterations = 24;
    params.interval = interval;
    params.concurrent = 2;
    params.chunks = chunks;
    params.staging_buffers = chunks;
    const Timeline timeline = simulate_timeline(discipline, params);

    // GPU busy time is exactly A·t (no work lost or duplicated).
    EXPECT_NEAR(timeline.gpu_busy, 24.0 * 1.0, 1e-9);
    // Makespan is at least the pure-compute lower bound.
    EXPECT_GE(timeline.makespan, 24.0 * 1.0 - 1e-9);
    // Every phase has positive length and lies within the makespan.
    for (const Phase& phase : timeline.phases) {
        EXPECT_LT(phase.start, phase.end);
        EXPECT_LE(phase.end, timeline.makespan + 1e-9);
    }
    // Checkpoint count matches the interval.
    EXPECT_EQ(timeline.checkpoints, 24 / interval);
}

INSTANTIATE_TEST_SUITE_P(
    Disciplines, TimelineProperty,
    ::testing::Combine(::testing::Values(Discipline::kSync,
                                         Discipline::kGpm,
                                         Discipline::kCheckFreq,
                                         Discipline::kPCcheck),
                       ::testing::Values<std::uint64_t>(1, 2, 4, 8),
                       ::testing::Values(1, 3)));

}  // namespace
}  // namespace pccheck
