/**
 * @file
 * pccheck-psan test suite (docs/PSAN.md):
 *  - shadow state machine behavior observable through the V4
 *    redundancy table (persist/fence accounting per device kind);
 *  - meta-mutations: one deliberately broken ordering per rule, each
 *    asserting the rule fires with its stable diagnostic —
 *      V1 fence drop before publish        (ack-before-payload)
 *      V1 seal reorder in the delta tier   (ack-before-payload)
 *      V1 early watermark advance          (ack-before-payload)
 *      V2 publish/seal without durability  (missing-fence)
 *      V3 live-slot / sealed-frame overwrite (lost-update)
 *      V5 recovery read of a nondurable line (nondurable-read)
 *  - faithful sequences through the real SlotStore/recovery paths
 *    stay psan-clean;
 *  - the orchestrator interposes PsanStorage from config.psan and a
 *    full train → recover cycle runs clean under it;
 *  - observe-hook forwarding through a decorator stack ends at the
 *    leaf (the contract pccheck_lint rule
 *    storage-decorator-forwards-hooks guards statically).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/orchestrator.h"
#include "core/recovery.h"
#include "core/slot_store.h"
#include "psan/psan.h"
#include "psan/psan_storage.h"
#include "storage/crash_sim.h"
#include "storage/mem_storage.h"
#include "storage/throttled_storage.h"
#include "trainsim/models.h"
#include "trainsim/training_loop.h"
#include "util/check.h"
#include "util/crc32.h"

namespace pccheck {
namespace {

using psan::Rule;
using psan::Runtime;
using psan::Violation;

/** Switches the runtime to collect mode and drains stale records. */
class PsanTest : public ::testing::Test {
  protected:
    void SetUp() override
    {
        Runtime::global().set_trap(Runtime::Trap::kCollect);
        Runtime::global().take_violations();
    }

    void TearDown() override
    {
        // A test that expected violations must have drained them; a
        // leftover record means an unasserted (or unexpected) report.
        const auto leaked = Runtime::global().take_violations();
        for (const Violation& v : leaked) {
            ADD_FAILURE() << "undrained psan violation: " << v.to_string();
        }
    }

    static std::vector<Violation> drain()
    {
        return Runtime::global().take_violations();
    }

    /** The single collected violation, asserted to match. */
    static void expect_one(Rule rule, const std::string& needle)
    {
        const auto violations = drain();
        ASSERT_EQ(violations.size(), 1u)
            << "expected exactly one violation";
        EXPECT_EQ(violations[0].rule, rule);
        EXPECT_NE(violations[0].message.find(needle), std::string::npos)
            << "message: " << violations[0].message;
    }

    static psan::RedundancyStats stats_for(const std::string& label)
    {
        for (const auto& [name, stats] :
             Runtime::global().redundancy_table()) {
            if (name == label) {
                return stats;
            }
        }
        return psan::RedundancyStats{};
    }
};

constexpr Bytes kDev = 64 * 1024;

// ------------------------------------------------------- state machine / V4

TEST_F(PsanTest, PmemPersistFenceLifecycleAndRedundancyCounts)
{
    CrashSimStorage inner(kDev, StorageKind::kPmemNt, 1);
    PsanStorage device(inner);
    std::uint8_t buf[256] = {};

    psan::ScopeLabel label("test.v4_pmem");
    PCCHECK_MUST(device.write(0, buf, 256));
    // First persist flushes 4 Dirty cache lines: useful.
    PCCHECK_MUST(device.persist(0, 256));
    // Second persist over the same (now FlushPending) range: redundant.
    PCCHECK_MUST(device.persist(0, 256));
    PCCHECK_MUST(device.fence());
    // Fence with nothing pending anywhere: redundant.
    PCCHECK_MUST(device.fence());

    const auto stats = stats_for("test.v4_pmem");
    EXPECT_EQ(stats.persist_ops, 2u);
    EXPECT_EQ(stats.redundant_persist_ops, 1u);
    EXPECT_EQ(stats.redundant_persist_lines, 4u);
    EXPECT_EQ(stats.fence_ops, 2u);
    EXPECT_EQ(stats.redundant_fences, 1u);
    EXPECT_TRUE(drain().empty());  // V4 is stats-only, never a violation
}

TEST_F(PsanTest, SsdPersistCommitsDirectlyAndFencesAreNeverCounted)
{
    CrashSimStorage inner(kDev, StorageKind::kSsdMsync, 1);
    PsanStorage device(inner);
    EXPECT_EQ(device.line_size(), 4096u);
    std::uint8_t buf[64] = {};

    psan::ScopeLabel label("test.v4_ssd");
    PCCHECK_MUST(device.write(0, buf, 64));
    PCCHECK_MUST(device.persist(0, 64));   // Dirty → Durable, no fence
    PCCHECK_MUST(device.persist(0, 64));   // redundant: already durable
    PCCHECK_MUST(device.fence());          // inherent no-op on SSD

    const auto stats = stats_for("test.v4_ssd");
    EXPECT_EQ(stats.persist_ops, 2u);
    EXPECT_EQ(stats.redundant_persist_ops, 1u);
    EXPECT_EQ(stats.fence_ops, 0u);  // SSD fences are never V4 material
    EXPECT_TRUE(drain().empty());
}

TEST_F(PsanTest, RewriteReDirtiesSoNextPersistIsUseful)
{
    CrashSimStorage inner(kDev, StorageKind::kPmemNt, 1);
    PsanStorage device(inner);
    std::uint8_t buf[64] = {};

    psan::ScopeLabel label("test.v4_redirty");
    PCCHECK_MUST(device.write(0, buf, 64));
    PCCHECK_MUST(device.persist(0, 64));
    PCCHECK_MUST(device.fence());
    PCCHECK_MUST(device.write(0, buf, 64));  // Durable → Dirty again
    PCCHECK_MUST(device.persist(0, 64));

    const auto stats = stats_for("test.v4_redirty");
    EXPECT_EQ(stats.persist_ops, 2u);
    EXPECT_EQ(stats.redundant_persist_ops, 0u);
    EXPECT_TRUE(drain().empty());
}

// ------------------------------------------------- V1: fence drop / reorder

TEST_F(PsanTest, MutationFenceDropBeforePublishFiresV1)
{
    // Real protocol objects, one broken ordering: the slot data is
    // written and persisted but the fence is DROPPED, so the payload
    // is still FlushPending when the pointer record publishes.
    CrashSimStorage inner(SlotStore::required_size(3, 4096),
                          StorageKind::kPmemNt, 1);
    PsanStorage device(inner);
    SlotStore store = SlotStore::format(device, 3, 4096);
    ASSERT_EQ(store.psan(), &device);

    std::vector<std::uint8_t> data(4096, 0xab);
    PCCHECK_MUST(store.write_slot(0, 0, data.data(), data.size()));
    PCCHECK_MUST(store.persist_slot_range(0, 0, data.size()));
    // <-- device.fence() deliberately missing

    CheckpointPointer ptr;
    ptr.counter = 1;
    ptr.slot = 0;
    ptr.data_len = data.size();
    PCCHECK_MUST(store.publish_pointer(ptr));

    const auto violations = drain();
    ASSERT_FALSE(violations.empty());
    EXPECT_EQ(violations[0].rule, Rule::kV1AckBeforePayload);
    EXPECT_NE(violations[0].message.find("ack-before-payload"),
              std::string::npos);
    EXPECT_EQ(violations[0].label, "slot_store.publish");
}

TEST_F(PsanTest, MutationSealReorderFiresV1)
{
    // Delta-tier seal reorder: the header seal claims a frame whose
    // payload lines were never persisted.
    CrashSimStorage inner(kDev, StorageKind::kPmemClwb, 1);
    PsanStorage device(inner);
    std::uint8_t payload[128] = {};
    PCCHECK_MUST(device.write(1024, payload, 128));
    // Payload neither persisted nor fenced; the seal begins anyway.
    device.on_seal_begin(1024, 128);
    expect_one(Rule::kV1AckBeforePayload, "delta frame seal");
}

TEST_F(PsanTest, MutationEarlyWatermarkAdvanceFiresV1)
{
    CrashSimStorage inner(kDev, StorageKind::kPmemNt, 1);
    PsanStorage device(inner);

    // No checkpoint has durably published yet: any advance is early.
    device.on_watermark_advance(1);
    expect_one(Rule::kV1AckBeforePayload, "watermark advanced");

    // Publish counter 2 durably, then ack counter 3 early.
    std::uint8_t rec[64] = {};
    PCCHECK_MUST(device.write(64, rec, 64));
    PCCHECK_MUST(device.persist(64, 64));
    PCCHECK_MUST(device.fence());
    device.on_publish_durable(2, 64, 64, 4096, 64);
    EXPECT_EQ(device.last_published_counter(), 2u);
    device.on_watermark_advance(2);  // faithful: quorum at the publish
    EXPECT_TRUE(drain().empty());
    device.on_watermark_advance(3);
    expect_one(Rule::kV1AckBeforePayload, "ahead of the newest durable");
}

// ----------------------------------------------------- V2: missing fence

TEST_F(PsanTest, MutationPublishWithoutFenceFiresV2)
{
    CrashSimStorage inner(kDev, StorageKind::kPmemNt, 1);
    PsanStorage device(inner);
    std::uint8_t rec[64] = {};
    PCCHECK_MUST(device.write(64, rec, 64));
    PCCHECK_MUST(device.persist(64, 64));
    // Fence dropped: the record is FlushPending, not durable, when the
    // publish claims success.
    device.on_publish_durable(1, 64, 64, 4096, 64);
    expect_one(Rule::kV2MissingFence, "missing-fence");
}

TEST_F(PsanTest, MutationSealWithoutDurabilityFiresV2)
{
    CrashSimStorage inner(kDev, StorageKind::kPmemClwb, 1);
    PsanStorage device(inner);
    std::uint8_t header[64] = {};
    PCCHECK_MUST(device.write(2048, header, 64));
    // Header never persisted: sealing it durable is a lie.
    device.on_seal_durable(2048, 192);
    expect_one(Rule::kV2MissingFence, "delta frame header");
}

// ------------------------------------------------------- V3: lost update

TEST_F(PsanTest, MutationLiveSlotOverwriteFiresV3)
{
    // Faithful publish through SlotStore, then a write into the slot
    // the newest durable checkpoint lives in.
    CrashSimStorage inner(SlotStore::required_size(3, 4096),
                          StorageKind::kPmemNt, 1);
    PsanStorage device(inner);
    SlotStore store = SlotStore::format(device, 3, 4096);

    std::vector<std::uint8_t> data(4096, 0xcd);
    PCCHECK_MUST(store.write_slot(1, 0, data.data(), data.size()));
    PCCHECK_MUST(store.persist_slot_range(1, 0, data.size()));
    PCCHECK_MUST(device.fence());
    CheckpointPointer ptr;
    ptr.counter = 1;
    ptr.slot = 1;
    ptr.data_len = data.size();
    PCCHECK_MUST(store.publish_pointer(ptr));
    EXPECT_TRUE(drain().empty());  // faithful sequence is psan-clean

    // Overwriting a DIFFERENT slot is the protocol's normal reuse.
    PCCHECK_MUST(store.write_slot(2, 0, data.data(), 64));
    EXPECT_TRUE(drain().empty());

    // Overwriting the live slot destroys the only durable checkpoint.
    PCCHECK_MUST(store.write_slot(1, 0, data.data(), 64));
    expect_one(Rule::kV3LostUpdate, "lost-update");
}

TEST_F(PsanTest, MutationSealedFrameOverwriteFiresV3UntilEpochReset)
{
    CrashSimStorage inner(kDev, StorageKind::kPmemNt, 1);
    PsanStorage device(inner);
    std::uint8_t buf[192] = {};
    PCCHECK_MUST(device.write(1024, buf, 192));
    PCCHECK_MUST(device.persist(1024, 192));
    PCCHECK_MUST(device.fence());
    device.on_seal_durable(1024, 192);
    EXPECT_TRUE(drain().empty());

    PCCHECK_MUST(device.write(1088, buf, 64));  // inside the sealed frame
    expect_one(Rule::kV3LostUpdate, "sealed delta frame");

    // After GC resets the epoch the space is legitimately reusable.
    device.on_epoch_reset();
    PCCHECK_MUST(device.write(1088, buf, 64));
    EXPECT_TRUE(drain().empty());
}

// --------------------------------------------------- V5: nondurable read

TEST_F(PsanTest, MutationRecoveryReadOfNondurableLineFiresV5)
{
    CrashSimStorage inner(kDev, StorageKind::kPmemNt, 1);
    PsanStorage device(inner);
    std::uint8_t buf[64] = {};
    PCCHECK_MUST(device.write(128, buf, 64));  // Dirty, never persisted

    {
        // Outside a recovery scope reads are unrestricted.
        PCCHECK_MUST(device.read(128, buf, 64));
        EXPECT_TRUE(drain().empty());
    }
    {
        psan::RecoveryScope scope;
        // Clean line: stable media content
        PCCHECK_MUST(device.read(0, buf, 64));
        EXPECT_TRUE(drain().empty());
        PCCHECK_MUST(device.read(128, buf, 64));
        expect_one(Rule::kV5NondurableRead, "nondurable-read");
    }
}

// ------------------------------------------------- faithful paths stay clean

TEST_F(PsanTest, FaithfulPublishRecoverCycleIsClean)
{
    CrashSimStorage inner(SlotStore::required_size(3, 4096),
                          StorageKind::kPmemNt, 1);
    PsanStorage device(inner);
    SlotStore store = SlotStore::format(device, 3, 4096);

    std::vector<std::uint8_t> data(4096);
    for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<std::uint8_t>(i * 7);
    }
    for (std::uint64_t counter = 1; counter <= 4; ++counter) {
        const auto slot = static_cast<std::uint32_t>(counter % 3);
        PCCHECK_MUST(store.write_slot(slot, 0, data.data(), data.size()));
        PCCHECK_MUST(store.persist_slot_range(slot, 0, data.size()));
        PCCHECK_MUST(device.fence());
        CheckpointPointer ptr;
        ptr.counter = counter;
        ptr.slot = slot;
        ptr.data_len = data.size();
        ptr.data_crc = crc32c(data.data(), data.size());
        PCCHECK_MUST(store.publish_pointer(ptr));
    }
    EXPECT_EQ(device.last_published_counter(), 4u);

    std::vector<std::uint8_t> out;
    const auto recovered = recover_latest(device, &out);
    ASSERT_TRUE(recovered.has_value());
    EXPECT_EQ(recovered->counter, 4u);
    EXPECT_EQ(out, data);
    EXPECT_TRUE(drain().empty());
}

TEST_F(PsanTest, OrchestratorInterposesFromConfigAndRunsClean)
{
    const std::uint64_t before = Runtime::global().violation_count();
    GpuConfig gpu_config;
    gpu_config.memory_bytes = 2 * kMiB;
    gpu_config.pcie_bytes_per_sec = 0;
    const ScaledModel model =
        scale_model(model_by_name("vgg16"), ScaleFactors{600.0, 20000.0});
    constexpr Bytes kState = 16 * 1024;

    CrashSimStorage device(SlotStore::required_size(3, kState),
                           StorageKind::kPmemNt, 11, 0.5);
    {
        SimGpu gpu(gpu_config);
        TrainingState state(gpu, kState);
        PCcheckConfig config;
        config.concurrent_checkpoints = 2;
        config.psan = true;
        PCcheckCheckpointer checkpointer(state, device, config);
        // The caller's device is wrapped internally.
        ASSERT_NE(checkpointer.slot_store().psan(), nullptr);
        EXPECT_EQ(&checkpointer.slot_store().psan()->inner(), &device);
        TrainingLoop loop(gpu, state, model);
        loop.run(12, 3, checkpointer);
        checkpointer.finish();
    }
    {
        SimGpu gpu(gpu_config);
        TrainingState state(gpu, kState);
        const auto recovered = recover_into_state(device, state);
        ASSERT_TRUE(recovered.has_value());
        EXPECT_GE(recovered->iteration, 3u);
    }
    // The full train → recover cycle reported nothing.
    EXPECT_EQ(Runtime::global().violation_count(), before);

    // With config.psan unset there is no interposition.
    SimGpu gpu(gpu_config);
    TrainingState state(gpu, kState);
    PCcheckConfig config;
    config.concurrent_checkpoints = 2;
    config.psan = false;
    PCcheckCheckpointer checkpointer(state, device, config);
    EXPECT_EQ(checkpointer.slot_store().psan(), nullptr);
    checkpointer.finish();
}

// ------------------------------------------------------ decorator plumbing

TEST_F(PsanTest, ObserveHookForwardsThroughDecoratorStackToLeaf)
{
    // PsanStorage → ThrottledStorage → CrashSimStorage: the hook set
    // on the outermost decorator must land on the leaf, so it sees
    // every op exactly once regardless of stacking.
    auto leaf = std::make_unique<CrashSimStorage>(
        kDev, StorageKind::kPmemNt, 1);
    auto throttled = std::make_unique<ThrottledStorage>(
        std::move(leaf), /*write_bytes_per_sec=*/0,
        /*persist_bytes_per_sec=*/0);
    PsanStorage device(std::move(throttled));

    std::vector<StorageOp::Kind> seen;
    device.set_observe_hook(
        [&seen](const StorageOp& op) { seen.push_back(op.kind); });

    std::uint8_t buf[64] = {};
    PCCHECK_MUST(device.write(0, buf, 64));
    PCCHECK_MUST(device.persist(0, 64));
    PCCHECK_MUST(device.fence());

    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0], StorageOp::Kind::kWrite);
    EXPECT_EQ(seen[1], StorageOp::Kind::kPersist);
    EXPECT_EQ(seen[2], StorageOp::Kind::kFence);
    EXPECT_TRUE(drain().empty());
}

// ----------------------------------------------------------- enablement

TEST_F(PsanTest, EnvironmentOverridesCompiledDefault)
{
    const char* saved = std::getenv("PCCHECK_PSAN");
    const std::string saved_value = saved != nullptr ? saved : "";

    ASSERT_EQ(setenv("PCCHECK_PSAN", "1", 1), 0);
    EXPECT_TRUE(psan::psan_default_enabled());
    ASSERT_EQ(setenv("PCCHECK_PSAN", "0", 1), 0);
    EXPECT_FALSE(psan::psan_default_enabled());

    if (saved != nullptr) {
        setenv("PCCHECK_PSAN", saved_value.c_str(), 1);
    } else {
        unsetenv("PCCHECK_PSAN");
    }
}

TEST_F(PsanTest, ViolationToStringIsDeterministic)
{
    Violation v;
    v.rule = Rule::kV3LostUpdate;
    v.label = "slot_store.publish";
    v.op_index = 42;
    v.offset = 4096;
    v.len = 64;
    v.message = "lost-update: example";
    EXPECT_EQ(v.to_string(),
              "psan: V3 lost-update: example range=[4096,4160) "
              "label=slot_store.publish op=42");
}

}  // namespace
}  // namespace pccheck
