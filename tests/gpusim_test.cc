/**
 * @file
 * Tests for the simulated GPU: allocation, DMA copies (sync/async,
 * pinned/unpinned), compute-engine contention, and the GPM-style copy
 * kernel that stalls compute.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "gpusim/gpu.h"
#include "storage/mem_storage.h"
#include "util/check.h"
#include "util/clock.h"

namespace pccheck {
namespace {

GpuConfig
fast_config(Bytes memory = 8 * kMiB)
{
    GpuConfig config;
    config.memory_bytes = memory;
    config.pcie_bytes_per_sec = 0;  // unthrottled unless a test sets it
    return config;
}

TEST(SimGpuTest, AllocTracksUsage)
{
    SimGpu gpu(fast_config());
    const DevPtr a = gpu.alloc(1000);
    EXPECT_TRUE(a.valid());
    EXPECT_EQ(a.size, 1000u);
    const DevPtr b = gpu.alloc(1000);
    EXPECT_NE(a.offset, b.offset);
    EXPECT_GE(gpu.memory_used(), 2000u);
    gpu.reset_allocations();
    EXPECT_EQ(gpu.memory_used(), 0u);
}

TEST(SimGpuTest, AllocExhaustionThrows)
{
    SimGpu gpu(fast_config(1 * kMiB));
    gpu.alloc(kMiB / 2);
    EXPECT_THROW(gpu.alloc(kMiB), FatalError);
}

TEST(SimGpuTest, CopyRoundTrip)
{
    SimGpu gpu(fast_config());
    const DevPtr ptr = gpu.alloc(4096);
    std::vector<std::uint8_t> in(4096);
    for (std::size_t i = 0; i < in.size(); ++i) {
        in[i] = static_cast<std::uint8_t>(i * 7);
    }
    gpu.copy_to_device(ptr, 0, in.data(), in.size());
    std::vector<std::uint8_t> out(4096, 0);
    gpu.copy_to_host(out.data(), ptr, 0, out.size());
    EXPECT_EQ(in, out);
    EXPECT_EQ(gpu.pcie_bytes_moved(), 8192u);
}

TEST(SimGpuTest, PartialOffsetCopy)
{
    SimGpu gpu(fast_config());
    const DevPtr ptr = gpu.alloc(4096);
    std::uint8_t byte = 0x5A;
    gpu.copy_to_device(ptr, 1000, &byte, 1);
    std::uint8_t out = 0;
    gpu.copy_to_host(&out, ptr, 1000, 1);
    EXPECT_EQ(out, 0x5A);
}

TEST(SimGpuTest, PcieThrottlePacesCopies)
{
    GpuConfig config = fast_config();
    config.pcie_bytes_per_sec = 10e6;  // 10 MB/s
    SimGpu gpu(config);
    const DevPtr ptr = gpu.alloc(200'000);
    std::vector<std::uint8_t> host(200'000);
    Stopwatch watch;
    gpu.copy_to_host(host.data(), ptr, 0, host.size());  // ~20 ms
    EXPECT_GE(watch.elapsed(), 0.015);
}

TEST(SimGpuTest, UnpinnedCopySlower)
{
    GpuConfig config = fast_config();
    config.pcie_bytes_per_sec = 50e6;
    config.unpinned_penalty = 0.5;
    SimGpu gpu(config);
    const DevPtr ptr = gpu.alloc(500'000);
    std::vector<std::uint8_t> host(500'000);

    Stopwatch pinned_watch;
    gpu.copy_to_host(host.data(), ptr, 0, host.size(), /*pinned=*/true);
    const Seconds pinned_time = pinned_watch.elapsed();

    Stopwatch unpinned_watch;
    gpu.copy_to_host(host.data(), ptr, 0, host.size(), /*pinned=*/false);
    const Seconds unpinned_time = unpinned_watch.elapsed();

    EXPECT_GT(unpinned_time, pinned_time * 1.4);
}

TEST(SimGpuTest, AsyncCopyCompletes)
{
    SimGpu gpu(fast_config());
    const DevPtr ptr = gpu.alloc(4096);
    std::vector<std::uint8_t> in(4096, 0x42);
    gpu.copy_to_device(ptr, 0, in.data(), in.size());
    std::vector<std::uint8_t> out(4096, 0);
    auto future = gpu.copy_to_host_async(out.data(), ptr, 0, out.size());
    future.get();
    EXPECT_EQ(out, in);
}

TEST(SimGpuTest, KernelsSerializeOnComputeEngine)
{
    SimGpu gpu(fast_config());
    Stopwatch watch;
    std::thread other([&gpu] { gpu.launch_kernel(0.03); });
    MonotonicClock::instance().sleep_for(0.005);  // let it start
    gpu.launch_kernel(0.005);  // must wait for the other kernel
    other.join();
    EXPECT_GE(watch.elapsed(), 0.03);
}

TEST(SimGpuTest, DmaCopyOverlapsCompute)
{
    GpuConfig config = fast_config();
    config.pcie_bytes_per_sec = 10e6;
    SimGpu gpu(config);
    const DevPtr ptr = gpu.alloc(200'000);
    std::vector<std::uint8_t> host(200'000);
    Stopwatch watch;
    std::thread compute([&gpu] { gpu.launch_kernel(0.02); });
    gpu.copy_to_host(host.data(), ptr, 0, host.size());  // ~20 ms DMA
    compute.join();
    // Overlapped: total well below the 40 ms serial sum.
    EXPECT_LT(watch.elapsed(), 0.036);
}

TEST(SimGpuTest, KernelCopyToStorageHoldsCompute)
{
    GpuConfig config = fast_config();
    config.pcie_bytes_per_sec = 10e6;
    config.kernel_copy_factor = 1.0;
    SimGpu gpu(config);
    const DevPtr ptr = gpu.alloc(200'000);
    MemStorage storage(200'000);

    Stopwatch watch;
    std::thread copier([&] {
        PCCHECK_MUST(gpu.kernel_copy_to_storage(storage, 0, ptr, 0, 200'000));
    });
    MonotonicClock::instance().sleep_for(0.004);
    gpu.launch_kernel(0.001);  // blocked behind the ~20 ms copy kernel
    copier.join();
    EXPECT_GE(watch.elapsed(), 0.02);
}

TEST(SimGpuTest, DirectCopyToStorageBypassesCompute)
{
    GpuConfig config = fast_config();
    config.pcie_bytes_per_sec = 10e6;
    SimGpu gpu(config);
    const DevPtr ptr = gpu.alloc(200'000);
    for (Bytes i = 0; i < 200'000; ++i) {
        gpu.device_data(ptr)[i] = static_cast<std::uint8_t>(i * 3);
    }
    MemStorage storage(200'000);
    Stopwatch watch;
    std::thread copier([&] {
        PCCHECK_MUST(gpu.direct_copy_to_storage(storage, 0, ptr, 0, 200'000));
    });
    // Unlike the GPM copy kernel, a P2P DMA leaves the compute engine
    // free: this kernel must not wait for the ~20 ms transfer.
    MonotonicClock::instance().sleep_for(0.002);
    Stopwatch kernel_watch;
    gpu.launch_kernel(0.001);
    EXPECT_LT(kernel_watch.elapsed(), 0.01);
    copier.join();
    EXPECT_GE(watch.elapsed(), 0.015);  // PCIe still paid
    std::vector<std::uint8_t> out(200'000);
    PCCHECK_MUST(storage.read(0, out.data(), out.size()));
    EXPECT_EQ(out[123], static_cast<std::uint8_t>(123 * 3));
}

TEST(SimGpuTest, DeviceDataDirectAccess)
{
    SimGpu gpu(fast_config());
    const DevPtr ptr = gpu.alloc(128);
    gpu.device_data(ptr)[5] = 0x77;
    std::uint8_t out = 0;
    gpu.copy_to_host(&out, ptr, 5, 1);
    EXPECT_EQ(out, 0x77);
}

}  // namespace
}  // namespace pccheck
