/**
 * @file
 * Tests for preemption-trace generation, statistics, and CSV
 * round-tripping.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "trace/preemption_trace.h"
#include "util/check.h"

namespace pccheck {
namespace {

TEST(TraceTest, ProfilesMatchPublishedStats)
{
    const SpotProfile gcp = gcp_a100_profile();
    EXPECT_DOUBLE_EQ(gcp.duration, 16.0 * 3600.0);
    EXPECT_NEAR(gcp.events_per_hour, 26.0 / 3.5, 1e-9);
    const SpotProfile aws = aws_spot_profile();
    EXPECT_NEAR(aws.events_per_hour, 127.0 / 24.0, 1e-9);
}

TEST(TraceTest, GeneratedTraceIsDeterministic)
{
    const auto a = generate_trace(gcp_a100_profile(), 99);
    const auto b = generate_trace(gcp_a100_profile(), 99);
    ASSERT_EQ(a.events.size(), b.events.size());
    for (std::size_t i = 0; i < a.events.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.events[i].time, b.events[i].time);
        EXPECT_EQ(a.events[i].vms_lost, b.events[i].vms_lost);
    }
}

TEST(TraceTest, DifferentSeedsDiffer)
{
    const auto a = generate_trace(gcp_a100_profile(), 1);
    const auto b = generate_trace(gcp_a100_profile(), 2);
    bool differs = a.events.size() != b.events.size();
    for (std::size_t i = 0;
         !differs && i < a.events.size() && i < b.events.size(); ++i) {
        differs = a.events[i].time != b.events[i].time;
    }
    EXPECT_TRUE(differs);
}

TEST(TraceTest, EventRateConverges)
{
    // Average over several seeds: expect ~16 h × 7.43/h ≈ 119 events.
    double total = 0;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        total += static_cast<double>(
            generate_trace(gcp_a100_profile(), seed).events.size());
    }
    const double mean = total / 20.0;
    EXPECT_NEAR(mean, 16.0 * 26.0 / 3.5, 20.0);
}

TEST(TraceTest, EventsSortedWithinDuration)
{
    const auto trace = generate_trace(aws_spot_profile(), 5);
    Seconds prev = 0;
    for (const auto& event : trace.events) {
        EXPECT_GE(event.time, prev);
        EXPECT_LT(event.time, trace.duration);
        EXPECT_GE(event.vms_lost, 1);
        prev = event.time;
    }
}

TEST(TraceTest, BurstsOccur)
{
    const auto trace = generate_trace(gcp_a100_profile(), 3);
    bool any_burst = false;
    for (const auto& event : trace.events) {
        any_burst |= event.vms_lost > 1;
    }
    EXPECT_TRUE(any_burst);  // burst_probability = 0.25
}

TEST(TraceTest, MtbfMatchesDefinition)
{
    PreemptionTrace trace;
    trace.duration = 100.0;
    trace.events = {{10, 1}, {50, 1}, {90, 1}, {95, 1}};
    EXPECT_DOUBLE_EQ(trace.mtbf(), 25.0);
    PreemptionTrace empty;
    empty.duration = 42.0;
    EXPECT_DOUBLE_EQ(empty.mtbf(), 42.0);
}

TEST(TraceTest, CsvRoundTrip)
{
    const std::string path = "/tmp/pccheck_trace_test.csv";
    const auto original = generate_trace(gcp_a100_profile(), 7);
    save_trace_csv(original, path);
    const auto loaded = load_trace_csv(path);
    EXPECT_DOUBLE_EQ(loaded.duration, original.duration);
    ASSERT_EQ(loaded.events.size(), original.events.size());
    for (std::size_t i = 0; i < loaded.events.size(); ++i) {
        EXPECT_NEAR(loaded.events[i].time, original.events[i].time, 1e-3);
        EXPECT_EQ(loaded.events[i].vms_lost, original.events[i].vms_lost);
    }
    std::remove(path.c_str());
}

TEST(TraceTest, LoadMissingFileThrows)
{
    EXPECT_THROW(load_trace_csv("/nonexistent/trace.csv"), FatalError);
}

}  // namespace
}  // namespace pccheck
