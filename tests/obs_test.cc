/**
 * @file
 * Tests for the observability layer: span nesting, concurrent
 * lock-free emission, Chrome-JSON well-formedness, stage histograms
 * through MetricsRegistry, and the cost of the disabled path.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/stage.h"
#include "obs/trace.h"
#include "util/metrics.h"
#include "util/stats.h"

namespace pccheck {
namespace {

/** Allocation counter for the zero-allocation-when-disabled test. */
std::atomic<std::size_t> g_allocations{0};

}  // namespace
}  // namespace pccheck

void*
operator new(std::size_t size)
{
    pccheck::g_allocations.fetch_add(1, std::memory_order_relaxed);
    void* p = std::malloc(size);
    if (p == nullptr) {
        throw std::bad_alloc();
    }
    return p;
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}

namespace pccheck {
namespace {

/**
 * Minimal recursive-descent JSON well-formedness checker for the
 * subset the exporter emits (objects, arrays, strings, numbers).
 */
class JsonChecker {
  public:
    explicit JsonChecker(const std::string& text) : text_(text) {}

    bool valid()
    {
        skip_ws();
        if (!value()) {
            return false;
        }
        skip_ws();
        return pos_ == text_.size();
    }

  private:
    bool value()
    {
        if (pos_ >= text_.size()) {
            return false;
        }
        const char c = text_[pos_];
        if (c == '{') {
            return object();
        }
        if (c == '[') {
            return array();
        }
        if (c == '"') {
            return string();
        }
        return number();
    }
    bool object()
    {
        ++pos_;  // '{'
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skip_ws();
            if (!string()) {
                return false;
            }
            skip_ws();
            if (peek() != ':') {
                return false;
            }
            ++pos_;
            skip_ws();
            if (!value()) {
                return false;
            }
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }
    bool array()
    {
        ++pos_;  // '['
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skip_ws();
            if (!value()) {
                return false;
            }
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }
    bool string()
    {
        if (peek() != '"') {
            return false;
        }
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\') {
                ++pos_;
            }
            ++pos_;
        }
        if (pos_ >= text_.size()) {
            return false;
        }
        ++pos_;  // closing quote
        return true;
    }
    bool number()
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E')) {
            ++pos_;
        }
        return pos_ > start;
    }
    char peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }
    void skip_ws()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

class ObsTest : public ::testing::Test {
  protected:
    void SetUp() override
    {
        Tracer::global().reset();
        Tracer::global().set_enabled(true);
    }
    void TearDown() override
    {
        Tracer::global().set_enabled(false);
        Tracer::global().reset();
    }
};

TEST_F(ObsTest, RecordsSpanWithArgs)
{
    {
        PCCHECK_TRACE_SPAN("unit.span", "slot", 7, "len", 4096);
    }
    const auto events = Tracer::global().snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_STREQ(events[0].name, "unit.span");
    EXPECT_LE(events[0].begin_ns, events[0].end_ns);
    ASSERT_EQ(events[0].nargs, 2u);
    EXPECT_STREQ(events[0].args[0].key, "slot");
    EXPECT_EQ(events[0].args[0].value, 7u);
    EXPECT_STREQ(events[0].args[1].key, "len");
    EXPECT_EQ(events[0].args[1].value, 4096u);
}

TEST_F(ObsTest, NestedSpansCloseInnerFirstAndStayContained)
{
    {
        PCCHECK_TRACE_SPAN("outer");
        {
            PCCHECK_TRACE_SPAN("inner");
        }
    }
    const auto events = Tracer::global().snapshot();
    ASSERT_EQ(events.size(), 2u);
    // Destruction order records the inner span first.
    EXPECT_STREQ(events[0].name, "inner");
    EXPECT_STREQ(events[1].name, "outer");
    EXPECT_GE(events[0].begin_ns, events[1].begin_ns);
    EXPECT_LE(events[0].end_ns, events[1].end_ns);
}

TEST_F(ObsTest, SpanOpenedWhileDisabledRecordsNothing)
{
    Tracer::global().set_enabled(false);
    {
        PCCHECK_TRACE_SPAN("ghost");
        Tracer::global().set_enabled(true);
    }  // closes after re-enable; must still record nothing
    EXPECT_EQ(Tracer::global().event_count(), 0u);
}

TEST_F(ObsTest, ConcurrentEmissionLosesNoEventsAndTearsNone)
{
    constexpr int kThreads = 8;
    constexpr int kSpansPerThread = 2000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            for (int i = 0; i < kSpansPerThread; ++i) {
                PCCHECK_TRACE_SPAN("mt.span", "thread",
                                   static_cast<std::uint64_t>(t), "i",
                                   static_cast<std::uint64_t>(i));
            }
        });
    }
    for (auto& thread : threads) {
        thread.join();
    }
    EXPECT_EQ(Tracer::global().dropped_count(), 0u);
    const auto events = Tracer::global().snapshot();
    std::size_t mine = 0;
    std::vector<std::size_t> per_thread(kThreads, 0);
    for (const auto& event : events) {
        if (std::string(event.name) != "mt.span") {
            continue;
        }
        ++mine;
        ASSERT_EQ(event.nargs, 2u);          // never torn
        ASSERT_LE(event.begin_ns, event.end_ns);
        ASSERT_LT(event.args[0].value, static_cast<std::uint64_t>(kThreads));
        ++per_thread[event.args[0].value];
    }
    EXPECT_EQ(mine, static_cast<std::size_t>(kThreads) * kSpansPerThread);
    for (int t = 0; t < kThreads; ++t) {
        EXPECT_EQ(per_thread[t], static_cast<std::size_t>(kSpansPerThread));
    }
}

TEST_F(ObsTest, BufferOverflowCountsDropsInsteadOfTearing)
{
    for (std::size_t i = 0; i < Tracer::kEventsPerThread + 100; ++i) {
        PCCHECK_TRACE_SPAN("flood");
    }
    // This thread may have recorded earlier events in this process;
    // drops are at least the overshoot and nothing is torn.
    EXPECT_GE(Tracer::global().dropped_count(), 100u);
    for (const auto& event : Tracer::global().snapshot()) {
        EXPECT_NE(event.name, nullptr);
    }
}

TEST_F(ObsTest, ExportedJsonIsWellFormedAndCarriesEvents)
{
    {
        PCCHECK_TRACE_SPAN("persist.chunk", "slot", 1, "len", 64);
        PCCHECK_TRACE_SPAN("quote\"backslash\\name");
    }
    std::ostringstream out;
    Tracer::global().export_chrome_json(out);
    const std::string json = out.str();
    JsonChecker checker(json);
    EXPECT_TRUE(checker.valid()) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("persist.chunk"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("quote\\\"backslash\\\\name"),
              std::string::npos);
}

TEST_F(ObsTest, DisabledPathAllocatesNothing)
{
    Tracer::global().set_enabled(false);
    // Warm the thread-local registration path while enabled first.
    Tracer::global().set_enabled(true);
    {
        PCCHECK_TRACE_SPAN("warm");
    }
    Tracer::global().set_enabled(false);
    const std::size_t before =
        g_allocations.load(std::memory_order_relaxed);
    for (int i = 0; i < 10000; ++i) {
        PCCHECK_TRACE_SPAN("cold", "k", 1);
    }
    const std::size_t after =
        g_allocations.load(std::memory_order_relaxed);
    EXPECT_EQ(before, after);
    EXPECT_EQ(Tracer::global().event_count(), 1u);  // just the warm span
}

TEST_F(ObsTest, StageSpanFeedsHistogramAlwaysAndTracerWhenEnabled)
{
    LatencyHistogram hist;
    {
        StageSpan span("stage.unit", hist, "slot", 3);
    }
    EXPECT_EQ(hist.count(), 1u);
    EXPECT_EQ(Tracer::global().event_count(), 1u);

    Tracer::global().set_enabled(false);
    {
        StageSpan span("stage.unit", hist);
    }
    EXPECT_EQ(hist.count(), 2u);                    // histogram always on
    EXPECT_EQ(Tracer::global().event_count(), 1u);  // tracer gated
}

TEST(HistogramTest, QuantilesMatchUniformDistribution)
{
    Histogram hist(0.0, 100.0, 1000);
    for (int i = 0; i < 10000; ++i) {
        hist.add(static_cast<double>(i % 100) + 0.5);
    }
    EXPECT_NEAR(hist.quantile(0.5), 50.0, 1.0);
    EXPECT_NEAR(hist.quantile(0.95), 95.0, 1.0);
    EXPECT_NEAR(hist.quantile(0.99), 99.0, 1.0);
    const HistogramSummary s = hist.summary();
    EXPECT_EQ(s.count, 10000u);
    EXPECT_NEAR(s.p50, 50.0, 1.0);
    EXPECT_NEAR(s.p95, 95.0, 1.0);
    EXPECT_NEAR(s.p99, 99.0, 1.0);
}

TEST(HistogramTest, MergeAddsCounts)
{
    Histogram a(0.0, 10.0, 100);
    Histogram b(0.0, 10.0, 100);
    for (int i = 0; i < 50; ++i) {
        a.add(2.0);
        b.add(8.0);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), 100u);
    EXPECT_NEAR(a.quantile(0.25), 2.0, 0.2);
    EXPECT_NEAR(a.quantile(0.75), 8.0, 0.2);
}

TEST(MetricsHistogramTest, RegistrySurfacesPercentiles)
{
    MetricsRegistry registry;
    LatencyHistogram& hist = registry.histogram("stage.test");
    for (int i = 0; i < 1000; ++i) {
        hist.observe(0.001 * static_cast<double>(i % 100));
    }
    EXPECT_EQ(&registry.histogram("stage.test"), &hist);

    std::ostringstream out;
    registry.dump(out);
    const std::string dump = out.str();
    EXPECT_NE(dump.find("stage.test.count"), std::string::npos);
    EXPECT_NE(dump.find("stage.test.p50"), std::string::npos);
    EXPECT_NE(dump.find("stage.test.p95"), std::string::npos);
    EXPECT_NE(dump.find("stage.test.p99"), std::string::npos);

    bool found = false;
    for (const auto& [name, value] : registry.snapshot()) {
        if (name == "stage.test.p50") {
            EXPECT_NEAR(value, 0.05, 0.005);
            found = true;
        }
    }
    EXPECT_TRUE(found);

    registry.reset();
    EXPECT_EQ(registry.histogram("stage.test").count(), 0u);
}

TEST(MetricsHistogramTest, ConcurrentObserveKeepsEverySample)
{
    MetricsRegistry registry;
    LatencyHistogram& hist = registry.histogram("stage.mt");
    constexpr int kThreads = 8;
    constexpr int kSamples = 5000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&hist] {
            for (int i = 0; i < kSamples; ++i) {
                hist.observe(0.001);
            }
        });
    }
    for (auto& thread : threads) {
        thread.join();
    }
    EXPECT_EQ(hist.count(),
              static_cast<std::size_t>(kThreads) * kSamples);
}

}  // namespace
}  // namespace pccheck
