/**
 * @file
 * Unit and integration tests for the peer-replication checkpoint tier
 * (docs/REPLICATION.md): deadline-bounded transfers, the node_loss
 * fault action, ReplicaStore versioning/eviction, ReplicationEngine
 * quorum semantics, and the orchestrator's replicated commit path.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "core/orchestrator.h"
#include "core/recovery.h"
#include "core/slot_store.h"
#include "faults/fault.h"
#include "faults/faulty_storage.h"
#include "net/network.h"
#include "remote/remote_recovery.h"
#include "remote/replica_store.h"
#include "remote/replication.h"
#include "storage/mem_storage.h"
#include "trainsim/models.h"
#include "trainsim/training_loop.h"
#include "util/check.h"
#include "util/clock.h"
#include "util/crc32.h"

namespace pccheck {
namespace {

std::vector<std::uint8_t>
pattern_bytes(Bytes len, std::uint8_t base)
{
    std::vector<std::uint8_t> data(len);
    for (Bytes i = 0; i < len; ++i) {
        data[i] = static_cast<std::uint8_t>(base + i * 7);
    }
    return data;
}

/** Install a whole complete version into @p store (helper). */
void
install_version(ReplicaStore& store, std::uint64_t counter,
                std::uint64_t iteration,
                const std::vector<std::uint8_t>& data)
{
    const auto result = store.store_chunk(counter, iteration, data.size(),
                                          0, data.data(), data.size());
    ASSERT_TRUE(result.stored);
    ASSERT_TRUE(result.byte_complete);
    ASSERT_TRUE(store.seal(counter, crc32c(data.data(), data.size())));
}

TEST(ReplicationConfigTest, ValidateRejectsBadKnobs)
{
    ReplicationConfig config;  // defaults: disabled
    EXPECT_FALSE(config.enabled());
    EXPECT_NO_THROW(config.validate());

    config.replicas = 1;
    config.quorum = 2;
    EXPECT_THROW(config.validate(), FatalError);

    config.quorum = 1;
    config.chunk_bytes = 0;
    EXPECT_THROW(config.validate(), FatalError);

    config.chunk_bytes = 4096;
    config.ack_timeout = 0;
    EXPECT_THROW(config.validate(), FatalError);

    config.ack_timeout = 0.05;
    EXPECT_NO_THROW(config.validate());
    EXPECT_TRUE(config.enabled());
}

TEST(TransferForTest, DeliversWithinDeadlineAndCountsBytes)
{
    NetworkConfig config;
    config.nodes = 2;
    config.latency = 0;
    config.nic_bytes_per_sec = 0;  // unthrottled
    SimNetwork network(config);
    const Bytes before = network.bytes_moved();
    const auto took = network.transfer_for(0, 1, 64 * kKiB, 1.0);
    ASSERT_TRUE(took.has_value());
    EXPECT_GE(*took, 0.0);
    EXPECT_EQ(network.bytes_moved(), before + 64 * kKiB);
}

TEST(TransferForTest, DeadNodeCostsTheTimeoutNeverAHang)
{
    NetworkConfig config;
    config.nodes = 2;
    config.latency = 0;
    config.nic_bytes_per_sec = 0;
    SimNetwork network(config);
    network.kill_node(1);
    EXPECT_FALSE(network.alive(1));

    const Seconds timeout = 0.01;
    Stopwatch watch;
    EXPECT_FALSE(network.transfer_for(0, 1, 1024, timeout).has_value());
    const Seconds elapsed = watch.elapsed();
    // The failure is only learned at the ack deadline...
    EXPECT_GE(elapsed, timeout * 0.9);
    // ...but never later than a comfortably bounded slop.
    EXPECT_LT(elapsed, timeout + 1.0);

    network.revive_node(1);
    EXPECT_TRUE(network.alive(1));
    EXPECT_TRUE(network.transfer_for(0, 1, 1024, 1.0).has_value());
}

TEST(TransferForTest, InjectedDropConsumesTheDeadline)
{
    NetworkConfig config;
    config.nodes = 2;
    config.latency = 0;
    config.nic_bytes_per_sec = 0;
    SimNetwork network(config);
    auto injector = std::make_shared<FaultInjector>(
        7, FaultPlan::parse("net.transfer:drop@nth=1,limit=1"));
    network.set_fault_injector(injector);

    EXPECT_FALSE(network.transfer_for(0, 1, 1024, 0.01).has_value());
    EXPECT_EQ(injector->injected(), 1u);
    // The rule's limit is spent; the retransmission goes through.
    EXPECT_TRUE(network.transfer_for(0, 1, 1024, 1.0).has_value());
    EXPECT_EQ(injector->ops(), 2u);
}

TEST(TransferForTest, EstimatePrefersFastPathsAndDeadIsInfinite)
{
    NetworkConfig config;
    config.nodes = 3;
    config.latency = 1e-6;
    config.nic_bytes_per_sec = 1e9;
    SimNetwork network(config);
    network.set_node_bandwidth(2, 1e7);  // slow replica NIC

    const Bytes len = 1 * kMiB;
    EXPECT_LT(network.estimate_transfer(1, 0, len),
              network.estimate_transfer(2, 0, len));

    network.kill_node(1);
    EXPECT_TRUE(std::isinf(network.estimate_transfer(1, 0, len)));
    EXPECT_TRUE(std::isinf(network.estimate_transfer(0, 1, len)));
}

TEST(NodeLossFaultTest, GrammarParses)
{
    const FaultPlan plan = FaultPlan::parse(
        "net.transfer:drop@p=0.5;"
        "net.transfer:stall=0.001@every=2;"
        "*:node_loss@nth=3,limit=1");
    ASSERT_EQ(plan.rules().size(), 3u);
    EXPECT_EQ(plan.rules()[0].point, "net.transfer");
    EXPECT_EQ(plan.rules()[0].action, FaultAction::kDrop);
    EXPECT_EQ(plan.rules()[0].trigger, FaultTrigger::kProbability);
    EXPECT_EQ(plan.rules()[1].action, FaultAction::kStall);
    EXPECT_DOUBLE_EQ(plan.rules()[1].stall_seconds, 0.001);
    EXPECT_EQ(plan.rules()[2].action, FaultAction::kNodeLoss);
    EXPECT_EQ(plan.rules()[2].nth, 3u);
    EXPECT_EQ(plan.rules()[2].limit, 1u);
}

TEST(NodeLossFaultTest, HandlerKillsStorageAndNicAtomically)
{
    auto injector = std::make_shared<FaultInjector>(
        11, FaultPlan::parse("*:node_loss@nth=1,limit=1"));
    FaultyStorage device(std::make_unique<MemStorage>(4096), injector);
    NetworkConfig net;
    net.nodes = 2;
    net.latency = 0;
    net.nic_bytes_per_sec = 0;
    SimNetwork network(net);
    network.set_fault_injector(injector);
    FaultyStorage* raw = &device;
    injector->set_node_loss_handler([raw, &network] {
        raw->kill();
        network.kill_node(0);
    });

    // The op that trips the rule is the first casualty: the node is
    // already dead from its own point of view when the call returns.
    const std::uint8_t byte = 0xAB;
    const StorageStatus status = device.write(0, &byte, 1);
    EXPECT_FALSE(status.ok());
    EXPECT_FALSE(status.is_transient());
    EXPECT_EQ(injector->node_losses(), 1u);
    EXPECT_TRUE(device.dead());
    EXPECT_FALSE(network.alive(0));

    // Lost media: the read fails permanently AND the buffer reads as
    // zeros (legacy callers that ignore the status still see no magic,
    // so SlotStore::open rejects the device either way).
    std::uint8_t probe = 0xFF;
    const StorageStatus dead_read = device.read(0, &probe, 1);
    EXPECT_TRUE(dead_read.is_permanent());
    EXPECT_EQ(probe, 0);
    EXPECT_FALSE(device.persist(0, 1).ok());
    EXPECT_FALSE(network.transfer_for(0, 1, 16, 0.005).has_value());
}

TEST(ReplicaStoreTest, OutOfOrderChunksAssembleSealAndRead)
{
    ReplicaStore store;
    const auto data = pattern_bytes(1000, 3);
    // Tail arrives first: network strands only order per peer, and a
    // checkpoint's chunks may interleave arbitrarily across strands.
    auto tail = store.store_chunk(42, 8, data.size(), 600,
                                  data.data() + 600, 400);
    EXPECT_TRUE(tail.stored);
    EXPECT_FALSE(tail.byte_complete);
    EXPECT_FALSE(store.newest_complete().has_value());

    auto head = store.store_chunk(42, 8, data.size(), 0, data.data(), 600);
    EXPECT_TRUE(head.stored);
    EXPECT_TRUE(head.byte_complete);
    ASSERT_TRUE(store.seal(42, crc32c(data.data(), data.size())));

    const auto newest = store.newest_complete();
    ASSERT_TRUE(newest.has_value());
    EXPECT_EQ(newest->counter, 42u);
    EXPECT_EQ(newest->iteration, 8u);
    EXPECT_EQ(newest->data_len, data.size());

    std::vector<std::uint8_t> read_back(data.size());
    ASSERT_TRUE(store.read(42, 0, read_back.data(), read_back.size()));
    EXPECT_EQ(read_back, data);
    std::uint8_t middle = 0;
    ASSERT_TRUE(store.read(42, 601, &middle, 1));
    EXPECT_EQ(middle, data[601]);
}

TEST(ReplicaStoreTest, SealNeverAcksHolesOrBadCrc)
{
    ReplicaStore store;
    const auto data = pattern_bytes(512, 9);
    // Half the bytes present: sealing must refuse (a hole is not an
    // ack, no matter what CRC the sender claims).
    (void)store.store_chunk(7, 2, data.size(), 0, data.data(), 256);
    EXPECT_FALSE(store.seal(7, crc32c(data.data(), data.size())));

    (void)store.store_chunk(7, 2, data.size(), 256, data.data() + 256,
                            256);
    EXPECT_FALSE(store.seal(7, 0xDEADBEEF));  // corrupt transfer
    EXPECT_FALSE(store.newest_complete().has_value());
    // The correct CRC still seals: a failed seal is not sticky.
    EXPECT_TRUE(store.seal(7, crc32c(data.data(), data.size())));
    EXPECT_FALSE(store.read(99, 0, nullptr, 0));
}

TEST(ReplicaStoreTest, EvictionPrefersStaleProtectsNewestComplete)
{
    const Bytes len = 1024;
    ReplicaStore store(len);  // budget: exactly one version
    const auto data = pattern_bytes(len, 1);

    // v10 incomplete, holding the whole budget.
    (void)store.store_chunk(10, 1, len, 0, data.data(), len / 2);
    EXPECT_EQ(store.stats().bytes_held, len);

    // v12 arrives: the incomplete v10 is the eviction victim.
    install_version(store, 12, 2, data);
    auto stats = store.stats();
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.versions, 1u);
    EXPECT_EQ(stats.bytes_held, len);

    // v14 cannot fit without evicting the newest complete version —
    // refused, and the refusal surfaces as a failed ack upstream.
    const auto refused = store.store_chunk(14, 3, len, 0, data.data(), len);
    EXPECT_FALSE(refused.stored);
    EXPECT_FALSE(store.seal(14, crc32c(data.data(), len)));
    // A version larger than the whole budget is refused outright.
    EXPECT_FALSE(
        store.store_chunk(16, 4, 2 * len, 0, data.data(), len).stored);
    stats = store.stats();
    EXPECT_GE(stats.rejected, 2u);

    // The protected version is still intact and recoverable.
    const auto newest = store.newest_complete();
    ASSERT_TRUE(newest.has_value());
    EXPECT_EQ(newest->counter, 12u);
    std::vector<std::uint8_t> read_back(len);
    ASSERT_TRUE(store.read(12, 0, read_back.data(), len));
    EXPECT_EQ(read_back, data);
}

TEST(ReplicaStoreTest, WatermarkIsMonotonic)
{
    ReplicaStore store;
    EXPECT_EQ(store.watermark(), 0u);
    store.advance_watermark(5);
    store.advance_watermark(3);  // stale report must not regress
    EXPECT_EQ(store.watermark(), 5u);
    store.advance_watermark(9);
    EXPECT_EQ(store.watermark(), 9u);
}

TEST(ReplicationEngineTest, QuorumZeroNeverGates)
{
    NetworkConfig net;
    net.nodes = 2;
    net.latency = 0;
    net.nic_bytes_per_sec = 0;
    SimNetwork network(net);
    ReplicaStore store;
    ReplicationConfig config;
    config.replicas = 1;
    config.quorum = 0;
    ReplicationEngine engine(network, 0, config, {{1, &store}});

    // No chunk sent, no seal delivered — await still never blocks.
    auto handle = engine.begin(1, 1, 128);
    EXPECT_TRUE(engine.await_quorum(handle));
    EXPECT_EQ(engine.degraded(), 0u);
}

TEST(ReplicationEngineTest, PipelinedChunksReachFullQuorum)
{
    NetworkConfig net;
    net.nodes = 3;
    net.latency = 0;
    net.nic_bytes_per_sec = 0;
    SimNetwork network(net);
    ReplicaStore store1;
    ReplicaStore store2;
    ReplicationConfig config;
    config.replicas = 2;
    config.quorum = 2;
    config.chunk_bytes = 256;  // force sub-chunking
    config.ack_timeout = 1.0;
    ReplicationEngine engine(network, 0, config,
                             {{1, &store1}, {2, &store2}});

    const auto data = pattern_bytes(1500, 5);
    auto handle = engine.begin(3, 6, data.size());
    engine.send_chunk(handle, 0, data.data(), 1000, nullptr);
    engine.send_chunk(handle, 1000, data.data() + 1000, 500, nullptr);
    engine.seal(handle, crc32c(data.data(), data.size()));
    EXPECT_TRUE(engine.await_quorum(handle));
    engine.advance_watermark(handle);
    engine.flush();

    EXPECT_EQ(engine.acks(), 2u);
    EXPECT_EQ(engine.degraded(), 0u);
    EXPECT_GE(engine.bytes_sent(), 2 * data.size());
    for (ReplicaStore* store : {&store1, &store2}) {
        const auto newest = store->newest_complete();
        ASSERT_TRUE(newest.has_value());
        EXPECT_EQ(newest->counter, 3u);
        EXPECT_EQ(store->watermark(), 3u);
        std::vector<std::uint8_t> read_back(data.size());
        ASSERT_TRUE(store->read(3, 0, read_back.data(), read_back.size()));
        EXPECT_EQ(read_back, data);
    }
}

TEST(ReplicationEngineTest, DeadPeerDegradesWithinTheAckDeadline)
{
    NetworkConfig net;
    net.nodes = 3;
    net.latency = 0;
    net.nic_bytes_per_sec = 0;
    SimNetwork network(net);
    network.kill_node(2);
    ReplicaStore store1;
    ReplicaStore store2;

    ReplicationConfig config;
    config.replicas = 2;
    config.quorum = 2;
    config.ack_timeout = 0.02;
    ReplicationEngine strict(network, 0, config,
                             {{1, &store1}, {2, &store2}});
    const auto data = pattern_bytes(512, 2);
    auto handle = strict.begin(4, 8, data.size());
    strict.send_chunk(handle, 0, data.data(), data.size(), nullptr);
    strict.seal(handle, crc32c(data.data(), data.size()));
    Stopwatch watch;
    EXPECT_FALSE(strict.await_quorum(handle));
    // Bounded degradation: one dead peer costs its ack deadline, not
    // a hang — generous slop for scheduling noise.
    EXPECT_LT(watch.elapsed(), 2.0);
    EXPECT_EQ(strict.degraded(), 1u);
    strict.flush();
    // The un-acked peer must never see a watermark for this counter.
    EXPECT_EQ(store2.watermark(), 0u);

    // The same failure under quorum=1 is absorbed by the survivor.
    config.quorum = 1;
    ReplicationEngine lax(network, 0, config,
                          {{1, &store1}, {2, &store2}});
    auto handle2 = lax.begin(5, 10, data.size());
    lax.send_chunk(handle2, 0, data.data(), data.size(), nullptr);
    lax.seal(handle2, crc32c(data.data(), data.size()));
    EXPECT_TRUE(lax.await_quorum(handle2));
    lax.advance_watermark(handle2);
    lax.flush();
    EXPECT_EQ(lax.degraded(), 0u);
    EXPECT_EQ(store1.watermark(), 5u);
    EXPECT_EQ(store2.watermark(), 0u);
}

TEST(RemoteRecoveryTest, PicksNewestCounterThenFastestPath)
{
    NetworkConfig net;
    net.nodes = 3;
    net.latency = 1e-6;
    net.nic_bytes_per_sec = 1e9;
    SimNetwork network(net);
    ReplicaStore store1;
    ReplicaStore store2;
    const auto older = pattern_bytes(2048, 1);
    const auto newer = pattern_bytes(2048, 77);
    install_version(store1, 5, 10, older);
    install_version(store2, 9, 18, newer);
    store1.advance_watermark(5);
    store2.advance_watermark(9);
    const std::vector<ReplicaPeer> peers = {{1, &store1}, {2, &store2}};

    std::vector<std::uint8_t> out;
    auto restored = recover_latest(nullptr, network, 0, peers, &out);
    ASSERT_TRUE(restored.has_value());
    EXPECT_TRUE(restored->from_replica);
    EXPECT_EQ(restored->source_node, 2);
    EXPECT_EQ(restored->result.counter, 9u);
    EXPECT_EQ(restored->result.iteration, 18u);
    EXPECT_EQ(out, newer);

    // The newest holder dies: recovery falls back to the next peer.
    network.kill_node(2);
    restored = recover_latest(nullptr, network, 0, peers, &out);
    ASSERT_TRUE(restored.has_value());
    EXPECT_EQ(restored->source_node, 1);
    EXPECT_EQ(restored->result.counter, 5u);
    EXPECT_EQ(out, older);

    // No surviving replica and no local media: nothing to restore.
    network.kill_node(1);
    EXPECT_FALSE(
        recover_latest(nullptr, network, 0, peers, &out).has_value());
}

TEST(OrchestratorReplicationTest, TrainingRunReplicatesAndRecovers)
{
    constexpr Bytes kState = 16 * 1024;
    constexpr int kConcurrent = 2;
    constexpr int kSlots = kConcurrent + 1;

    NetworkConfig net;
    net.nodes = 3;
    net.latency = 0;
    SimNetwork network(net);
    ReplicaStore store1;
    ReplicaStore store2;
    ReplicationConfig rconfig;
    rconfig.replicas = 2;
    rconfig.quorum = 1;
    rconfig.ack_timeout = 0.5;
    ReplicationEngine engine(network, 0, rconfig,
                             {{1, &store1}, {2, &store2}});

    MemStorage device(SlotStore::required_size(kSlots, kState));
    GpuConfig gpu_config;
    gpu_config.memory_bytes = 2 * kMiB;
    gpu_config.pcie_bytes_per_sec = 0;
    SimGpu gpu(gpu_config);
    TrainingState state(gpu, kState);
    PCcheckConfig config;
    config.concurrent_checkpoints = kConcurrent;

    std::uint64_t latest_counter = 0;
    std::uint64_t latest_iteration = 0;
    {
        PCcheckCheckpointer checkpointer(state, device, config);
        checkpointer.attach_replication(&engine);
        TrainingLoop loop(gpu, state,
                          scale_model(model_by_name("vgg16"),
                                      ScaleFactors{600.0, 20000.0}));
        loop.run(12, 2, checkpointer);
        engine.flush();

        const auto latest = checkpointer.commit_protocol().latest_pointer();
        ASSERT_TRUE(latest.has_value());
        latest_counter = latest->counter;
        latest_iteration = latest->iteration;
        // Healthy fabric: every published checkpoint met its quorum,
        // so the replicated watermark tracks the commit frontier.
        EXPECT_EQ(checkpointer.commit_protocol().replicated_watermark(),
                  latest_counter);
        EXPECT_EQ(engine.degraded(), 0u);
    }

    // Each peer holds the newest checkpoint, watermarked, bit-exact
    // with what local recovery reads back.
    std::vector<std::uint8_t> local;
    const auto local_result = recover_to_buffer(device, &local);
    ASSERT_TRUE(local_result.has_value());
    EXPECT_EQ(local_result->counter, latest_counter);
    for (ReplicaStore* store : {&store1, &store2}) {
        const auto newest = store->newest_complete();
        ASSERT_TRUE(newest.has_value());
        EXPECT_EQ(newest->counter, latest_counter);
        EXPECT_EQ(newest->iteration, latest_iteration);
        EXPECT_EQ(store->watermark(), latest_counter);
        std::vector<std::uint8_t> replica(newest->data_len);
        ASSERT_TRUE(store->read(newest->counter, 0, replica.data(),
                                replica.size()));
        EXPECT_EQ(replica, local);
    }

    // With the local device alive, recover_latest stays local.
    const std::vector<ReplicaPeer> peers = {{1, &store1}, {2, &store2}};
    std::vector<std::uint8_t> out;
    auto restored = recover_latest(&device, network, 0, peers, &out);
    ASSERT_TRUE(restored.has_value());
    EXPECT_FALSE(restored->from_replica);
    EXPECT_EQ(restored->result.counter, latest_counter);

    // Node 0 lost everything: the replica tier restores the newest
    // quorum-complete checkpoint, verified down to the stamped bytes.
    restored = recover_latest(nullptr, network, 0, peers, &out);
    ASSERT_TRUE(restored.has_value());
    EXPECT_TRUE(restored->from_replica);
    EXPECT_GE(restored->result.counter, store1.watermark());
    EXPECT_EQ(restored->result.counter, latest_counter);
    EXPECT_EQ(TrainingState::verify_buffer(out.data(), out.size()),
              std::make_optional(latest_iteration));
}

}  // namespace
}  // namespace pccheck
