/**
 * @file
 * Targeted fault injection against the on-device format: corrupted
 * and torn pointer records, corrupted headers, bad slot data, and
 * truncated devices. The contract under attack is always the same —
 * recovery either returns a fully validated checkpoint or reports
 * failure; it never returns garbage and never crashes the process
 * (device-level corruption is an environment fault, not a bug).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "core/concurrent_commit.h"
#include "core/recovery.h"
#include "core/slot_store.h"
#include "storage/mem_storage.h"
#include "trainsim/training_state.h"
#include "util/check.h"
#include "util/crc32.h"
#include "util/rng.h"

namespace pccheck {
namespace {

constexpr Bytes kState = 16 * 1024;

/** Device with two committed checkpoints (iterations 1 and 2). */
std::unique_ptr<MemStorage>
device_with_two_checkpoints()
{
    auto device = std::make_unique<MemStorage>(
        SlotStore::required_size(3, kState));
    SlotStore store = SlotStore::format(*device, 3, kState);
    ConcurrentCommit commit(store);
    for (std::uint64_t i = 1; i <= 2; ++i) {
        const CheckpointTicket ticket = commit.begin();
        std::vector<std::uint8_t> data(kState);
        TrainingState::stamp_buffer(data.data(), data.size(), i);
        PCCHECK_MUST(store.write_slot(ticket.slot, 0, data.data(), data.size()));
        PCCHECK_MUST(store.persist_slot_range(ticket.slot, 0, data.size()));
        PCCHECK_MUST(store.device().fence());
        commit.commit(ticket, data.size(), i,
                      crc32c(data.data(), data.size()));
    }
    return device;
}

/** Corrupt @p len bytes at @p offset of the raw device. */
void
smash(StorageDevice& device, Bytes offset, Bytes len, std::uint8_t value)
{
    std::vector<std::uint8_t> garbage(len, value);
    PCCHECK_MUST(device.write(offset, garbage.data(), garbage.size()));
}

TEST(FaultInjectionTest, CleanDeviceRecoversNewest)
{
    auto device = device_with_two_checkpoints();
    std::vector<std::uint8_t> buffer;
    const auto recovered = recover_to_buffer(*device, &buffer);
    ASSERT_TRUE(recovered.has_value());
    EXPECT_EQ(recovered->iteration, 2u);
}

TEST(FaultInjectionTest, NewerRecordSmashedFallsBack)
{
    auto device = device_with_two_checkpoints();
    // Pointer records live at offsets 64 and 128; counter 2 uses
    // record index 2 % 2 = 0 (offset 64).
    smash(*device, 64, 64, 0xEE);
    std::vector<std::uint8_t> buffer;
    const auto recovered = recover_to_buffer(*device, &buffer);
    ASSERT_TRUE(recovered.has_value());
    EXPECT_EQ(recovered->iteration, 1u);  // the older record survives
    EXPECT_EQ(TrainingState::verify_buffer(buffer.data(), buffer.size()),
              std::make_optional<std::uint64_t>(1));
}

TEST(FaultInjectionTest, BothRecordsSmashedFailsCleanly)
{
    auto device = device_with_two_checkpoints();
    smash(*device, 64, 128, 0xEE);
    std::vector<std::uint8_t> buffer;
    EXPECT_FALSE(recover_to_buffer(*device, &buffer).has_value());
}

TEST(FaultInjectionTest, SingleBitFlipInRecordDetected)
{
    auto device = device_with_two_checkpoints();
    // Flip one bit in every byte position of the newest record, one
    // at a time; the checksum must catch each flip (fall back to 1).
    for (Bytes byte = 0; byte < 64; ++byte) {
        std::uint8_t original = 0;
        PCCHECK_MUST(device->read(64 + byte, &original, 1));
        const std::uint8_t flipped = original ^ 0x01;
        PCCHECK_MUST(device->write(64 + byte, &flipped, 1));
        std::vector<std::uint8_t> buffer;
        const auto recovered = recover_to_buffer(*device, &buffer);
        ASSERT_TRUE(recovered.has_value()) << "byte " << byte;
        EXPECT_EQ(recovered->iteration, 1u) << "byte " << byte;
        PCCHECK_MUST(device->write(64 + byte, &original, 1));  // restore
    }
}

TEST(FaultInjectionTest, NewestDataCorruptionFallsBack)
{
    auto device = device_with_two_checkpoints();
    // Find which slot the newest record references and corrupt the
    // DATA, leaving the record intact: the CRC must reject it.
    SlotStore store = SlotStore::open(*device);
    const auto candidates = store.candidate_pointers();
    ASSERT_GE(candidates.size(), 2u);
    const auto& newest = candidates.front();
    smash(*device, store.slot_offset(newest.slot) + 100, 32, 0x77);
    std::vector<std::uint8_t> buffer;
    const auto recovered = recover_to_buffer(*device, &buffer);
    ASSERT_TRUE(recovered.has_value());
    EXPECT_EQ(recovered->counter, candidates[1].counter);
}

TEST(FaultInjectionTest, HeaderCorruptionFailsOpen)
{
    auto device = device_with_two_checkpoints();
    smash(*device, 0, 8, 0x00);  // destroy the magic
    EXPECT_THROW(SlotStore::open(*device), FatalError);
    std::vector<std::uint8_t> buffer;
    EXPECT_THROW(recover_to_buffer(*device, &buffer), FatalError);
}

TEST(FaultInjectionTest, HeaderGeometryLiesAreRejected)
{
    auto device = device_with_two_checkpoints();
    // Inflate slot_count so slots would extend past the device end.
    std::uint32_t huge = 1000;
    PCCHECK_MUST(device->write(12, &huge, sizeof(huge)));  // header.slot_count
    EXPECT_THROW(SlotStore::open(*device), FatalError);
}

TEST(FaultInjectionTest, RecordPointingPastSlotsRejected)
{
    auto device = device_with_two_checkpoints();
    // Forge a syntactically valid record with an out-of-range slot:
    // the checksum passes but the slot bound check must reject it.
    struct ForgedRecord {
        std::uint64_t counter = 99;
        std::uint32_t slot = 7;  // only 3 slots exist
        std::uint32_t data_crc = 0;
        std::uint64_t data_len = kState;
        std::uint64_t iteration = 99;
        std::uint8_t pad[28] = {};
        std::uint32_t record_checksum = 0;
    } forged;
    forged.record_checksum =
        crc32c(&forged, offsetof(ForgedRecord, record_checksum));
    PCCHECK_MUST(device->write(64, &forged, sizeof(forged)));
    std::vector<std::uint8_t> buffer;
    const auto recovered = recover_to_buffer(*device, &buffer);
    ASSERT_TRUE(recovered.has_value());
    EXPECT_EQ(recovered->iteration, 1u);  // forged record ignored
}

TEST(FaultInjectionTest, RandomCorruptionNeverYieldsGarbage)
{
    // Fuzz: random 64-byte smashes anywhere on the device. Recovery
    // must either fail, throw FatalError (header destroyed), or
    // return a checkpoint whose stamp verifies.
    Rng rng(2026);
    for (int round = 0; round < 40; ++round) {
        auto device = device_with_two_checkpoints();
        const Bytes offset = rng.next_below(device->size() - 64);
        smash(*device, offset, 64,
              static_cast<std::uint8_t>(rng.next_u64()));
        std::vector<std::uint8_t> buffer;
        try {
            const auto recovered = recover_to_buffer(*device, &buffer);
            if (recovered.has_value()) {
                const auto stamped = TrainingState::verify_buffer(
                    buffer.data(), buffer.size());
                ASSERT_TRUE(stamped.has_value()) << "round " << round;
                EXPECT_EQ(*stamped, recovered->iteration)
                    << "round " << round;
            }
        } catch (const FatalError&) {
            // Header destroyed: a clean, reported failure.
        }
    }
}

}  // namespace
}  // namespace pccheck
