/**
 * @file
 * Tests for the training simulator: model catalog (Table 3), scaling
 * rules, stamped training state, and the T/U training loop.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "gpusim/gpu.h"
#include "util/check.h"
#include "trainsim/checkpointer.h"
#include "trainsim/data_loader.h"
#include "trainsim/models.h"
#include "trainsim/training_loop.h"
#include "trainsim/training_state.h"

namespace pccheck {
namespace {

TEST(ModelsTest, CatalogMatchesTable3)
{
    EXPECT_EQ(model_by_name("vgg16").checkpoint_bytes,
              static_cast<Bytes>(1.1e9));
    EXPECT_EQ(model_by_name("bert").checkpoint_bytes,
              static_cast<Bytes>(4.0e9));
    EXPECT_EQ(model_by_name("opt-1.3b").checkpoint_bytes,
              static_cast<Bytes>(16.2e9));
    EXPECT_EQ(model_by_name("bloom-7b").checkpoint_bytes,
              static_cast<Bytes>(108.0e9));
    EXPECT_EQ(model_by_name("bloom-7b").pipeline_stages, 6);
    EXPECT_EQ(model_by_name("opt-2.7b").pipeline_stages, 2);
}

TEST(ModelsTest, UnknownModelThrows)
{
    EXPECT_THROW(model_by_name("gpt-17"), FatalError);
}

TEST(ModelsTest, ScalingPreservesTimeRatios)
{
    // Tw / (f·t) must be invariant: bandwidth scaled by Kt/Ks, size by
    // 1/Ks, time by 1/Kt.
    const ModelSpec& spec = model_by_name("opt-1.3b");
    ScaleFactors factors{/*time=*/20.0, /*size=*/2000.0};
    const ScaledModel scaled = scale_model(spec, factors);

    const double full_bw = 0.45e9;
    const double scaled_bw = factors.scale_bandwidth(full_bw);
    const double full_ratio =
        (static_cast<double>(spec.checkpoint_bytes) / full_bw) /
        spec.iteration_time;
    const double scaled_ratio =
        (static_cast<double>(scaled.checkpoint_bytes) / scaled_bw) /
        scaled.iteration_time;
    EXPECT_NEAR(scaled_ratio / full_ratio, 1.0, 0.01);
}

TEST(ModelsTest, ScaledSizeFloor)
{
    ScaleFactors factors{10.0, 1e15};
    using namespace literals;
    EXPECT_EQ(factors.scale_size(1_gb), 4096u);
}

TEST(TrainingStateTest, StampAndVerify)
{
    GpuConfig config;
    config.memory_bytes = 4 * kMiB;
    config.pcie_bytes_per_sec = 0;
    SimGpu gpu(config);
    TrainingState state(gpu, 1 * kMiB);
    state.stamp(42);
    EXPECT_EQ(state.iteration(), 42u);
    const auto verified = TrainingState::verify_buffer(
        gpu.device_data(state.device_ptr()), state.size());
    ASSERT_TRUE(verified.has_value());
    EXPECT_EQ(*verified, 42u);
}

TEST(TrainingStateTest, TornBufferRejected)
{
    std::vector<std::uint8_t> buffer(64 * 1024);
    TrainingState::stamp_buffer(buffer.data(), buffer.size(), 5);
    // Overwrite the second half with a different iteration: torn.
    TrainingState::stamp_buffer(buffer.data() + 32 * 1024, 32 * 1024, 6);
    EXPECT_FALSE(
        TrainingState::verify_buffer(buffer.data(), buffer.size())
            .has_value());
}

TEST(TrainingStateTest, MisplacedChunkRejected)
{
    std::vector<std::uint8_t> buffer(64 * 1024);
    TrainingState::stamp_buffer(buffer.data(), buffer.size(), 5);
    // Swap two 4 KiB chunks: same iteration but wrong offsets.
    std::vector<std::uint8_t> tmp(4096);
    std::memcpy(tmp.data(), buffer.data(), 4096);
    std::memcpy(buffer.data(), buffer.data() + 4096, 4096);
    std::memcpy(buffer.data() + 4096, tmp.data(), 4096);
    EXPECT_FALSE(
        TrainingState::verify_buffer(buffer.data(), buffer.size())
            .has_value());
}

TEST(TrainingStateTest, CorruptMarkerRejected)
{
    std::vector<std::uint8_t> buffer(16 * 1024);
    TrainingState::stamp_buffer(buffer.data(), buffer.size(), 9);
    buffer[4096] ^= 0xFF;  // corrupt a marker byte
    EXPECT_FALSE(
        TrainingState::verify_buffer(buffer.data(), buffer.size())
            .has_value());
}

TEST(TrainingLoopTest, IdealThroughputMatchesIterationTime)
{
    GpuConfig config;
    config.memory_bytes = 2 * kMiB;
    config.pcie_bytes_per_sec = 0;
    SimGpu gpu(config);
    TrainingState state(gpu, 64 * kKiB);
    ModelSpec spec = model_by_name("vgg16");
    ScaledModel model = scale_model(spec, ScaleFactors{20.0, 20000.0});
    // 60 ms / 20 = 3 ms per iteration.
    TrainingLoop loop(gpu, state, model);
    NoCheckpointer none;
    const TrainingResult result = loop.run(50, 0, none);
    EXPECT_EQ(result.iterations, 50u);
    const double ideal = ideal_throughput(model);
    EXPECT_GT(result.throughput, 0.7 * ideal);
    EXPECT_LE(result.throughput, 1.1 * ideal);
}

TEST(TrainingLoopTest, StateStampedEachIteration)
{
    GpuConfig config;
    config.memory_bytes = 2 * kMiB;
    config.pcie_bytes_per_sec = 0;
    SimGpu gpu(config);
    TrainingState state(gpu, 64 * kKiB);
    ScaledModel model =
        scale_model(model_by_name("vgg16"), ScaleFactors{600.0, 20000.0});
    TrainingLoop loop(gpu, state, model);
    NoCheckpointer none;
    loop.run(10, 0, none);
    EXPECT_EQ(state.iteration(), 10u);
    loop.run(5, 0, none, /*start_iteration=*/11);
    EXPECT_EQ(state.iteration(), 15u);
}

/** Counts checkpoint requests to verify interval semantics. */
class CountingCheckpointer final : public Checkpointer {
  public:
    std::string name() const override { return "counting"; }
    void
    request_checkpoint(std::uint64_t iteration) override
    {
        iterations.push_back(iteration);
    }
    CheckpointerStats stats() const override { return {}; }
    std::vector<std::uint64_t> iterations;
};

TEST(TrainingLoopTest, CheckpointIntervalHonored)
{
    GpuConfig config;
    config.memory_bytes = 2 * kMiB;
    config.pcie_bytes_per_sec = 0;
    SimGpu gpu(config);
    TrainingState state(gpu, 64 * kKiB);
    ScaledModel model =
        scale_model(model_by_name("vgg16"), ScaleFactors{600.0, 20000.0});
    TrainingLoop loop(gpu, state, model);
    CountingCheckpointer counter;
    loop.run(20, 5, counter);
    EXPECT_EQ(counter.iterations,
              (std::vector<std::uint64_t>{5, 10, 15, 20}));
}

TEST(TrainingLoopTest, SlowdownComputation)
{
    TrainingResult result;
    result.throughput = 5.0;
    EXPECT_DOUBLE_EQ(result.slowdown_vs(10.0), 2.0);
}

// ---------------------------------------- persistent iterator (§4.2)

TEST(DataLoaderTest, EpochIsAPermutation)
{
    DataLoader loader(100, 10, /*seed=*/7);
    std::vector<bool> seen(100, false);
    for (int batch = 0; batch < 10; ++batch) {
        for (const std::uint64_t sample : loader.next().samples) {
            ASSERT_LT(sample, 100u);
            EXPECT_FALSE(seen[sample]) << "duplicate within epoch";
            seen[sample] = true;
        }
    }
    for (bool sample_seen : seen) {
        EXPECT_TRUE(sample_seen);
    }
}

TEST(DataLoaderTest, EpochsShuffleDifferently)
{
    DataLoader loader(64, 64, 3);
    const auto epoch0 = loader.next().samples;
    const auto epoch1 = loader.next().samples;
    EXPECT_NE(epoch0, epoch1);
}

TEST(DataLoaderTest, TailBatchIsShort)
{
    DataLoader loader(25, 10, 1);
    EXPECT_EQ(loader.batches_per_epoch(), 3u);
    EXPECT_EQ(loader.next().samples.size(), 10u);
    EXPECT_EQ(loader.next().samples.size(), 10u);
    EXPECT_EQ(loader.next().samples.size(), 5u);
    const Batch next_epoch = loader.next();
    EXPECT_EQ(next_epoch.epoch, 1u);
    EXPECT_EQ(next_epoch.samples.size(), 10u);
}

TEST(DataLoaderTest, SeekResumesExactSequence)
{
    // The §4.2 recovery property: resuming at the checkpointed
    // iteration reproduces the uninterrupted sample stream.
    DataLoader uninterrupted(1000, 32, 42);
    std::vector<Batch> reference;
    for (int batch = 0; batch < 80; ++batch) {
        reference.push_back(uninterrupted.next());
    }
    // "Crash" after iteration 47; a fresh loader seeks and resumes.
    DataLoader resumed(1000, 32, 42);
    resumed.seek(47);
    for (std::size_t batch = 47; batch < 80; ++batch) {
        const Batch got = resumed.next();
        EXPECT_EQ(got.iteration, reference[batch].iteration);
        EXPECT_EQ(got.epoch, reference[batch].epoch);
        EXPECT_EQ(got.samples, reference[batch].samples);
    }
}

TEST(DataLoaderTest, SeekAcrossEpochBoundary)
{
    DataLoader reference(30, 10, 5);
    for (int batch = 0; batch < 7; ++batch) {
        reference.next();  // into epoch 2
    }
    const Batch expected = reference.next();
    DataLoader resumed(30, 10, 5);
    resumed.seek(7);
    const Batch got = resumed.next();
    EXPECT_EQ(got.epoch, expected.epoch);
    EXPECT_EQ(got.samples, expected.samples);
}

}  // namespace
}  // namespace pccheck
