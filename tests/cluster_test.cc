/**
 * @file
 * Tests for the pipeline-parallel cluster harness: node scaling,
 * activation traffic on the shared fabric, per-node checkpointer
 * wiring, and the rank-0 consistency result (TEST_P over cluster
 * sizes).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/cluster.h"
#include "core/orchestrator.h"
#include "core/recovery.h"
#include "core/slot_store.h"
#include "storage/mem_storage.h"
#include "trainsim/checkpointer.h"

namespace pccheck {
namespace {

ClusterConfig
base_config(int nodes)
{
    ClusterConfig config;
    config.nodes = nodes;
    config.stage_time = 0.002;
    config.partition_bytes = 16 * 1024;
    config.activation_bytes = 1024;
    config.gpu.memory_bytes = kMiB;
    config.gpu.pcie_bytes_per_sec = 0;
    config.network.nic_bytes_per_sec = 0;
    config.network.latency = 0;
    config.coordinate = false;
    return config;
}

PipelineCluster::Factory
none_factory()
{
    return [](const ClusterNode&) -> PipelineCluster::NodeCheckpointer {
        return {std::make_unique<NoCheckpointer>(), nullptr};
    };
}

class ClusterSizeProperty : public ::testing::TestWithParam<int> {};

TEST_P(ClusterSizeProperty, AllNodesTrainInLockstep)
{
    const int nodes = GetParam();
    PipelineCluster cluster(base_config(nodes));
    const ClusterResult result = cluster.run(10, 0, none_factory());
    EXPECT_GT(result.throughput, 0);
    EXPECT_EQ(result.node_stats.size(),
              static_cast<std::size_t>(nodes));
    for (int rank = 0; rank < nodes; ++rank) {
        EXPECT_EQ(cluster.state(rank).iteration(), 10u);
    }
}

TEST_P(ClusterSizeProperty, CoordinationYieldsCommonIteration)
{
    const int nodes = GetParam();
    ClusterConfig config = base_config(nodes);
    config.coordinate = true;
    PipelineCluster cluster(config);
    std::vector<std::unique_ptr<MemStorage>> devices(
        static_cast<std::size_t>(nodes));
    const auto factory =
        [&](const ClusterNode& node) -> PipelineCluster::NodeCheckpointer {
        const auto index = static_cast<std::size_t>(node.rank);
        devices[index] = std::make_unique<MemStorage>(
            SlotStore::required_size(3, config.partition_bytes));
        PCcheckConfig pc;
        auto checkpointer = std::make_unique<PCcheckCheckpointer>(
            *node.state, *devices[index], pc);
        PCcheckCheckpointer* raw = checkpointer.get();
        return {std::move(checkpointer), [raw] {
                    const auto latest =
                        raw->commit_protocol().latest_pointer();
                    return latest ? latest->iteration : 0;
                }};
    };
    const ClusterResult result = cluster.run(12, 4, factory);
    EXPECT_GT(result.consistent_iteration, 0u);
    EXPECT_EQ(result.consistent_iteration % 4, 0u);
    // Every node's durable partition covers the agreed iteration.
    for (int rank = 0; rank < nodes; ++rank) {
        std::vector<std::uint8_t> buffer;
        const auto recovered = recover_to_buffer(
            *devices[static_cast<std::size_t>(rank)], &buffer);
        ASSERT_TRUE(recovered.has_value());
        EXPECT_GE(recovered->iteration, result.consistent_iteration);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ClusterSizeProperty,
                         ::testing::Values(1, 2, 3, 4, 6));

TEST(ClusterTest, ActivationTrafficSlowsPipeline)
{
    // With a slow NIC the per-iteration activation hop gates the
    // pipeline rate; the cluster must expose that contention.
    ClusterConfig fast = base_config(2);
    PipelineCluster fast_cluster(fast);
    const double fast_tp =
        fast_cluster.run(20, 0, none_factory()).throughput;

    ClusterConfig slow = base_config(2);
    slow.activation_bytes = 64 * 1024;
    slow.network.nic_bytes_per_sec = 16e6;  // 64 KiB → 4 ms per hop
    PipelineCluster slow_cluster(slow);
    const double slow_tp =
        slow_cluster.run(20, 0, none_factory()).throughput;

    EXPECT_LT(slow_tp, fast_tp * 0.7);
}

TEST(ClusterTest, GpuAccessorsWork)
{
    PipelineCluster cluster(base_config(2));
    EXPECT_EQ(cluster.state(0).size(), 16u * 1024u);
    EXPECT_EQ(cluster.state(1).size(), 16u * 1024u);
    EXPECT_GE(cluster.network().nodes(), 2);
    // Each node has its own GPU arena.
    cluster.gpu(0).device_data(cluster.state(0).device_ptr())[0] = 1;
    EXPECT_EQ(
        cluster.gpu(1).device_data(cluster.state(1).device_ptr())[0],
        cluster.gpu(1)
            .device_data(cluster.state(1).device_ptr())[0]);
}

TEST(ClusterTest, StatsAggregatePerNode)
{
    ClusterConfig config = base_config(3);
    PipelineCluster cluster(config);
    std::vector<std::unique_ptr<MemStorage>> devices(3);
    const auto factory =
        [&](const ClusterNode& node) -> PipelineCluster::NodeCheckpointer {
        const auto index = static_cast<std::size_t>(node.rank);
        devices[index] = std::make_unique<MemStorage>(
            SlotStore::required_size(3, config.partition_bytes));
        PCcheckConfig pc;
        return {std::make_unique<PCcheckCheckpointer>(
                    *node.state, *devices[index], pc),
                nullptr};
    };
    const ClusterResult result = cluster.run(9, 3, factory);
    for (const auto& stats : result.node_stats) {
        EXPECT_EQ(stats.requested, 3u);
        EXPECT_EQ(stats.completed, 3u);
    }
}

}  // namespace
}  // namespace pccheck
