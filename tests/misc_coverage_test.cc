/**
 * @file
 * Coverage for the remaining small surfaces: logging levels, config
 * formatting, histogram/timeline rendering, CSV arity enforcement,
 * adaptive-controller edge states, and clock composition.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/adaptive.h"
#include "core/config.h"
#include "sim/timeline.h"
#include "util/check.h"
#include "util/clock.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/stats.h"

namespace pccheck {
namespace {

TEST(LoggingTest, LevelGateIsGlobal)
{
    const LogLevel before = log_level();
    set_log_level(LogLevel::kError);
    EXPECT_EQ(log_level(), LogLevel::kError);
    set_log_level(LogLevel::kDebug);
    EXPECT_EQ(log_level(), LogLevel::kDebug);
    set_log_level(before);
}

TEST(ConfigTest, ToStringDescribesPipelining)
{
    PCcheckConfig config;
    config.concurrent_checkpoints = 3;
    config.writers_per_checkpoint = 2;
    EXPECT_NE(config.to_string().find("N=3"), std::string::npos);
    EXPECT_NE(config.to_string().find("non-pipelined"),
              std::string::npos);
    config.chunk_bytes = 4 * kMiB;
    EXPECT_NE(config.to_string().find("pipelined(4.00 MiB)"),
              std::string::npos);
}

TEST(ConfigTest, ValidationCatchesEachField)
{
    PCcheckConfig config;
    config.concurrent_checkpoints = 0;
    EXPECT_THROW(config.validate(), FatalError);
    config = PCcheckConfig{};
    config.writers_per_checkpoint = 0;
    EXPECT_THROW(config.validate(), FatalError);
    config = PCcheckConfig{};
    config.per_writer_bytes_per_sec = -1;
    EXPECT_THROW(config.validate(), FatalError);
    config = PCcheckConfig{};
    EXPECT_NO_THROW(config.validate());
}

TEST(HistogramTest, ToStringReportsQuantiles)
{
    Histogram hist(0, 10, 10);
    for (int i = 0; i < 100; ++i) {
        hist.add(i % 10 + 0.5);
    }
    const std::string text = hist.to_string();
    EXPECT_NE(text.find("n=100"), std::string::npos);
    EXPECT_NE(text.find("p50"), std::string::npos);
}

TEST(CsvTest, ArityMismatchAborts)
{
    CsvWriter writer("/tmp/pccheck_misc_csv.csv", {"a", "b"});
    EXPECT_DEATH(writer.row({"only-one"}), "arity");
}

TEST(CsvTest, UnwritablePathThrows)
{
    EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}), FatalError);
}

TEST(AdaptiveControllerTest, NoObservationsKeepsInitialInterval)
{
    AdaptiveController controller({}, 17);
    EXPECT_EQ(controller.interval(), 17u);
    // Only one side observed: still no adaptation.
    controller.observe_iteration(0.1);
    EXPECT_EQ(controller.interval(), 17u);
    EXPECT_EQ(controller.adaptations(), 0u);
    EXPECT_DOUBLE_EQ(controller.tw_estimate(), 0.0);
}

TEST(AdaptiveControllerTest, NonPositiveObservationsIgnored)
{
    AdaptiveController controller({}, 10);
    controller.observe_iteration(-1.0);
    controller.observe_checkpoint(0.0);
    EXPECT_EQ(controller.interval(), 10u);
}

TEST(ClockTest, ScaledClockComposition)
{
    const auto& base = MonotonicClock::instance();
    ScaledClock x10(base, 10.0);
    ScaledClock x100(x10, 10.0);  // 100× total
    const Seconds a = x100.now();
    base.sleep_for(0.002);
    EXPECT_GE(x100.now() - a, 0.15);
    EXPECT_DOUBLE_EQ(x10.factor(), 10.0);
}

TEST(TimelineTest, RenderScalesWithStep)
{
    TimelineParams params;
    params.iterations = 2;
    const Timeline timeline =
        simulate_timeline(Discipline::kSync, params);
    const std::string coarse = timeline.render(1.0);
    const std::string fine = timeline.render(0.25);
    EXPECT_GT(fine.size(), coarse.size());
}

TEST(TimelineTest, ZeroIntervalMeansNoCheckpoints)
{
    TimelineParams params;
    params.iterations = 5;
    params.interval = 0;
    const Timeline timeline =
        simulate_timeline(Discipline::kPCcheck, params);
    EXPECT_EQ(timeline.checkpoints, 0u);
    EXPECT_NEAR(timeline.makespan, 5.0, 1e-9);
}

}  // namespace
}  // namespace pccheck
