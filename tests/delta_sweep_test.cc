/**
 * @file
 * Delta-tier crash-monkey sweep (docs/DELTA_LOG.md): training with
 * sparse updates seals one delta frame per iteration on top of
 * interval-spaced full checkpoints; each seed crashes at a seeded
 * storage-op index (including inside DeltaLog::append via the
 * delta.append fault point), recovers the post-crash media image with
 * the three-tier recover_latest, and checks:
 *
 *  - a recoverable checkpoint always exists;
 *  - the recovered iteration never regresses below the last durable
 *    FULL checkpoint of the warm phase (the delta floor after a
 *    process restart — see the reopen truncation note in
 *    docs/DELTA_LOG.md) and never exceeds the run length;
 *  - the recovered bytes are byte-identical to the training state at
 *    the recovered iteration (shadow-image oracle: the sparse update
 *    sequence replayed on a host buffer);
 *  - training resumes from the image and makes durable progress.
 *
 * Runs 64 seeds by default; PCCHECK_CRASH_SWEEP_SEEDS widens it.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/orchestrator.h"
#include "core/recovery.h"
#include "core/slot_store.h"
#include "faults/fault.h"
#include "faults/faulty_storage.h"
#include "psan/psan.h"
#include "storage/crash_sim.h"
#include "storage/mem_storage.h"
#include "trainsim/models.h"
#include "trainsim/training_loop.h"
#include "util/annotations.h"
#include "util/check.h"
#include "util/rng.h"

namespace pccheck {
namespace {

constexpr Bytes kState = 16 * 1024;
constexpr int kConcurrent = 2;
constexpr int kSlots = kConcurrent + 1;
constexpr Bytes kLogBytes = 1 * kMiB;  // roomy: no mid-epoch skips
constexpr double kSparseFraction = 0.25;
constexpr std::uint64_t kSparseSeed = 99;

GpuConfig
fast_gpu()
{
    GpuConfig config;
    config.memory_bytes = 2 * kMiB;
    config.pcie_bytes_per_sec = 0;
    return config;
}

ScaledModel
tiny_model()
{
    return scale_model(model_by_name("vgg16"),
                       ScaleFactors{600.0, 20000.0});
}

struct SweepConfig {
    std::uint64_t warmup_iters = 4;
    std::uint64_t main_iters = 14;
    std::uint64_t interval = 4;  ///< fulls; deltas land every iteration
    std::string noise;
};

/**
 * Asserts the enclosing scope reported no psan violations
 * (docs/PSAN.md). Vacuous when the sanitizer is off; under
 * PCCHECK_PSAN=1 every seed of the sweep must run contract-clean.
 */
class PsanCleanGuard {
  public:
    PsanCleanGuard() : before_(psan::Runtime::global().violation_count()) {}
    ~PsanCleanGuard()
    {
        EXPECT_EQ(psan::Runtime::global().violation_count(), before_)
            << "sweep must be psan-clean";
    }

  private:
    std::uint64_t before_;
};

struct SeedRun {
    std::uint64_t ops_after_warmup = 0;
    std::uint64_t ops_total = 0;
    bool crashed = false;
    /** Last durable FULL-tier iteration before faults were armed. */
    std::uint64_t warm_full_iteration = 0;
    std::uint64_t delta_frames = 0;  ///< frames sealed by the main run
    std::vector<std::uint8_t> image;
};

PCcheckConfig
sweep_config(std::uint64_t seed)
{
    PCcheckConfig config;
    config.concurrent_checkpoints = kConcurrent;
    config.delta_log_bytes = kLogBytes;
    config.retry_seed = seed;
    return config;
}

/** One train → crash-capture → drain cycle (crash_op == 0 calibrates). */
SeedRun
run_training(std::uint64_t seed, std::uint64_t crash_op,
             const SweepConfig& sweep)
{
    SeedRun out;
    auto injector = std::make_shared<FaultInjector>(seed);
    auto media_owned = std::make_unique<CrashSimStorage>(
        SlotStore::required_size(kSlots, kState, kLogBytes),
        StorageKind::kPmemNt, seed, 0.5);
    CrashSimStorage* media = media_owned.get();
    FaultyStorage device(std::move(media_owned), injector);

    SimGpu gpu(fast_gpu());
    TrainingState state(gpu, kState);

    {
        // Warmup with no faults armed: at least one durable full
        // checkpoint exists before any trigger can fire.
        PCcheckCheckpointer warm(state, device, sweep_config(seed));
        TrainingLoop loop(gpu, state, tiny_model());
        loop.set_delta_interval(1);
        loop.set_sparse_updates(kSparseFraction, kSparseSeed);
        loop.run(sweep.warmup_iters, sweep.interval, warm);
        const auto published = warm.slot_store().last_published();
        PCCHECK_CHECK(published.has_value());
        out.warm_full_iteration = published->iteration;
    }
    out.ops_after_warmup = injector->ops();

    FaultPlan plan;
    if (crash_op > 0) {
        FaultRule crash;
        crash.point = "*";
        crash.action = FaultAction::kCrash;
        crash.trigger = FaultTrigger::kNthOp;
        crash.nth = crash_op;
        crash.limit = 1;
        plan.add(crash);  // first so noise rules cannot shadow it
    }
    const FaultPlan noise_plan = FaultPlan::parse(sweep.noise);
    for (const FaultRule& rule : noise_plan.rules()) {
        plan.add(rule);
    }
    Mutex image_mu;
    injector->set_crash_handler([&out, &image_mu, media] {
        MutexLock lock(image_mu);
        out.image = media->crash_image();
    });
    injector->set_plan(std::move(plan));

    {
        PCcheckCheckpointer main(state, device, sweep_config(seed));
        // Arm the delta.append fault point: the crash trigger (a
        // global op-index trigger) can now land at the top of an
        // append, between an append's storage ops (via the decorated
        // device), or anywhere else in the op stream.
        PCCHECK_CHECK(main.delta_log() != nullptr);
        main.delta_log()->set_op_probe(
            [injector] { return injector->on_op("delta.append"); });
        TrainingLoop loop(gpu, state, tiny_model());
        loop.set_delta_interval(1);
        loop.set_sparse_updates(kSparseFraction, kSparseSeed);
        loop.run(sweep.main_iters, sweep.interval, main,
                 sweep.warmup_iters + 1);
        out.delta_frames = main.stats().delta_frames;
    }
    out.ops_total = injector->ops();
    out.crashed = injector->crashes() > 0;
    return out;
}

int
sweep_seeds(int fallback)
{
    const char* env = std::getenv("PCCHECK_CRASH_SWEEP_SEEDS");
    if (env != nullptr && std::atoi(env) > 0) {
        return std::atoi(env);
    }
    return fallback;
}

/** The training state at @p iteration, rebuilt on a host buffer. */
std::vector<std::uint8_t>
shadow_at(std::uint64_t iteration)
{
    std::vector<std::uint8_t> img(kState);
    TrainingState::stamp_buffer(img.data(), img.size(), 0);
    for (std::uint64_t i = 1; i <= iteration; ++i) {
        TrainingState::sparse_update_buffer(img.data(), img.size(), i,
                                            kSparseFraction, kSparseSeed);
    }
    return img;
}

/** Recover + validate one crash image; 0 on (already reported) failure. */
std::uint64_t
check_crash_image(const SeedRun& run, const SweepConfig& sweep,
                  std::uint64_t seed, std::uint64_t crash_op)
{
    MemStorage dead(run.image.size());
    std::memcpy(dead.raw(), run.image.data(), run.image.size());
    std::vector<std::uint8_t> buffer;
    const auto recovered = recover_latest(dead, &buffer);
    EXPECT_TRUE(recovered.has_value())
        << "invariant violated: no recoverable checkpoint, seed " << seed
        << " crash_op " << crash_op;
    if (!recovered.has_value()) {
        return 0;
    }
    // Floor: never below the warm phase's durable FULL checkpoint.
    // (The delta chain itself is re-truncated on restart — the
    // documented reopen window — so the full tier is the cross-process
    // floor; the MC enumerator proves the within-process ack floor.)
    EXPECT_GE(recovered->iteration, run.warm_full_iteration)
        << "durable checkpoint regressed, seed " << seed << " crash_op "
        << crash_op;
    EXPECT_LE(recovered->iteration,
              sweep.warmup_iters + sweep.main_iters);
    // Integrity: marker scheme holds and the newest stamp matches.
    EXPECT_EQ(TrainingState::verify_buffer_sparse(buffer.data(),
                                                  buffer.size()),
              std::make_optional(recovered->iteration))
        << "seed " << seed << " crash_op " << crash_op;
    // Exactness: byte-identical to the state at that iteration. Every
    // frame carries its chunks' content AT the frame's iteration, so a
    // full base plus any sealed prefix of its chain reproduces the
    // state at the last applied frame exactly.
    const auto expected = shadow_at(recovered->iteration);
    EXPECT_EQ(buffer, expected)
        << "recovered image diverges from the iteration-"
        << recovered->iteration << " state, seed " << seed << " crash_op "
        << crash_op << " delta_frames " << recovered->delta_frames;
    return recovered->iteration;
}

TEST(DeltaSweepTest, InvariantHoldsAtRandomCrashPoints)
{
    PsanCleanGuard psan_clean;
    const SweepConfig sweep;
    const SeedRun calib = run_training(54321, 0, sweep);
    ASSERT_GT(calib.ops_total, calib.ops_after_warmup);
    ASSERT_GT(calib.delta_frames, 0u);  // the delta path is exercised

    const int seeds = sweep_seeds(64);
    int crashed = 0;
    for (int s = 1; s <= seeds; ++s) {
        const std::uint64_t seed = 3000 + static_cast<std::uint64_t>(s);
        Rng pick(seed * 0x9E3779B97F4A7C15ULL);
        const std::uint64_t crash_op =
            calib.ops_after_warmup + 1 +
            pick.next_below(calib.ops_total - calib.ops_after_warmup);
        const SeedRun run = run_training(seed, crash_op, sweep);
        if (!run.crashed) {
            ASSERT_GT(crash_op, run.ops_total)
                << "crash trigger silently skipped, seed " << seed;
            continue;
        }
        ++crashed;
        const std::uint64_t recovered_iteration =
            check_crash_image(run, sweep, seed, crash_op);
        if (recovered_iteration == 0) {
            continue;
        }

        // Resume: recover into a fresh state, train on with the delta
        // tier live, and require durable progress past the crash.
        MemStorage dead(run.image.size());
        std::memcpy(dead.raw(), run.image.data(), run.image.size());
        SimGpu gpu(fast_gpu());
        TrainingState state(gpu, kState);
        const auto loaded = recover_latest_into_state(dead, state);
        ASSERT_TRUE(loaded.has_value());
        ASSERT_EQ(loaded->iteration, recovered_iteration);
        PCcheckCheckpointer resumed(state, dead, sweep_config(seed));
        TrainingLoop loop(gpu, state, tiny_model());
        loop.set_delta_interval(1);
        loop.set_sparse_updates(kSparseFraction, kSparseSeed);
        loop.run(4, 2, resumed, loaded->iteration + 1);
        const auto after = resumed.slot_store().last_published();
        ASSERT_TRUE(after.has_value());
        EXPECT_GT(after->iteration, run.warm_full_iteration)
            << "resume made no durable progress, seed " << seed;
    }
    EXPECT_GE(crashed, seeds * 9 / 10);
}

TEST(DeltaSweepTest, InvariantHoldsWithAppendFaultNoise)
{
    PsanCleanGuard psan_clean;
    // delta.append and the storage ops under it fail transiently; the
    // orchestrator's skip-and-retry path runs while crashes land.
    SweepConfig sweep;
    sweep.noise =
        "delta.append:transient@p=0.05;"
        "storage.persist:transient@p=0.01";
    const SeedRun calib = run_training(888, 0, sweep);
    ASSERT_GT(calib.ops_total, calib.ops_after_warmup);

    const int seeds = sweep_seeds(64) / 4 + 1;
    int crashed = 0;
    for (int s = 1; s <= seeds; ++s) {
        const std::uint64_t seed = 7000 + static_cast<std::uint64_t>(s);
        Rng pick(seed * 0xBF58476D1CE4E5B9ULL);
        const std::uint64_t crash_op =
            calib.ops_after_warmup + 1 +
            pick.next_below(calib.ops_total - calib.ops_after_warmup);
        const SeedRun run = run_training(seed, crash_op, sweep);
        if (!run.crashed) {
            ASSERT_GT(crash_op, run.ops_total);
            continue;
        }
        ++crashed;
        check_crash_image(run, sweep, seed, crash_op);
    }
    EXPECT_GE(crashed, seeds / 2);
}

TEST(DeltaSweepTest, CalibrationRunIsCleanAndDeterministic)
{
    PsanCleanGuard psan_clean;
    const SweepConfig sweep;
    const SeedRun a = run_training(4242, 0, sweep);
    const SeedRun b = run_training(4242, 0, sweep);
    EXPECT_FALSE(a.crashed);
    EXPECT_EQ(a.ops_after_warmup, b.ops_after_warmup);
    EXPECT_EQ(a.ops_total, b.ops_total);
    EXPECT_EQ(a.delta_frames, b.delta_frames);
    EXPECT_GT(a.delta_frames, 0u);
}

}  // namespace
}  // namespace pccheck
