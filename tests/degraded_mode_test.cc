/**
 * @file
 * Graceful degradation under failures:
 *  - coordination timeouts: a dead rank must not hang the survivors —
 *    they time out, keep their last consistent id, and continue
 *    checkpointing locally (direct coordinator test and the full
 *    pipeline-cluster integration with a rank killed mid-run);
 *  - storage failures: permanent errors abort the checkpoint attempt
 *    and recycle the slot (the slot-leak regression), transient error
 *    storms are retried to completion with no lost checkpoints.
 */

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "core/cluster.h"
#include "core/distributed.h"
#include "core/orchestrator.h"
#include "core/recovery.h"
#include "core/slot_store.h"
#include "faults/fault.h"
#include "faults/faulty_storage.h"
#include "net/network.h"
#include "storage/mem_storage.h"
#include "trainsim/models.h"
#include "trainsim/training_loop.h"
#include "util/metrics.h"

namespace pccheck {
namespace {

constexpr Bytes kState = 16 * 1024;

GpuConfig
fast_gpu()
{
    GpuConfig config;
    config.memory_bytes = 2 * kMiB;
    config.pcie_bytes_per_sec = 0;
    return config;
}

ScaledModel
tiny_model()
{
    return scale_model(model_by_name("vgg16"),
                       ScaleFactors{600.0, 20000.0});
}

TEST(DegradedModeTest, SurvivorsTimeOutWhenPeerDiesMidCoordinate)
{
    // 3 ranks; rank 1 "dies" before the second round. Ranks 0 and 2
    // must complete every round without hanging, keeping the last
    // consistent id from the round everyone finished.
    NetworkConfig net;
    net.nodes = 3;
    net.latency = 0;
    SimNetwork network(net);
    constexpr Seconds kTimeout = 0.02;

    const std::uint64_t timeouts_before =
        MetricsRegistry::global()
            .counter("pccheck.coordinate.timeouts")
            .value();

    std::vector<std::uint64_t> round1(3, 0);
    std::vector<std::uint64_t> round2(3, 0);
    std::vector<char> degraded(3, 0);
    std::vector<std::thread> threads;
    for (int rank = 0; rank < 3; ++rank) {
        threads.emplace_back([&, rank] {
            DistributedCoordinator coordinator(network, rank, 3,
                                               kTimeout);
            const auto index = static_cast<std::size_t>(rank);
            round1[index] = coordinator.coordinate(10 + rank);
            if (rank == 1) {
                return;  // rank 1 dies here
            }
            round2[index] = coordinator.coordinate(20 + rank);
            degraded[index] = coordinator.degraded() ? 1 : 0;
        });
    }
    for (auto& thread : threads) {
        thread.join();
    }

    // Round 1 (everyone alive) agreed on min(10, 11, 12).
    EXPECT_EQ(round1[0], 10u);
    EXPECT_EQ(round1[1], 10u);
    EXPECT_EQ(round1[2], 10u);
    // Round 2: rank 1 never announced; the survivors returned without
    // advancing past the last id everyone agreed on.
    EXPECT_EQ(round2[0], 10u);
    EXPECT_EQ(round2[2], 10u);
    // Rank 0 observed the timeout directly; rank 2 was released by
    // rank 0's degraded broadcast (it may or may not have timed out
    // itself depending on scheduling).
    EXPECT_EQ(degraded[0], 1);
    EXPECT_GE(MetricsRegistry::global()
                  .counter("pccheck.coordinate.timeouts")
                  .value(),
              timeouts_before + 1);
}

TEST(DegradedModeTest, LateAnnouncesFromTimedOutRoundsAreDiscarded)
{
    // Rank 1 announces round 1 only after rank 0 already timed the
    // round out: the stale announce must not poison round 2.
    NetworkConfig net;
    net.nodes = 2;
    net.latency = 0;
    SimNetwork network(net);

    DistributedCoordinator rank0(network, 0, 2, 0.02);
    const std::uint64_t r1 = rank0.coordinate(7);  // times out
    EXPECT_EQ(r1, 0u);
    EXPECT_TRUE(rank0.degraded());
    EXPECT_EQ(rank0.timeouts(), 1u);

    // The late peer wakes up: its round-1 announce goes out, then it
    // participates in round 2 normally.
    DistributedCoordinator rank1(network, 1, 2, 0.02);
    std::thread peer([&rank1] {
        (void)rank1.coordinate(5);  // stale round-1 announce
        (void)rank1.coordinate(9);  // round 2
    });
    const std::uint64_t r2 = rank0.coordinate(11);
    peer.join();
    // Round 2 agreement is min(11, 9) — the stale 5 was discarded.
    EXPECT_EQ(r2, 9u);
    EXPECT_EQ(rank0.last_consistent(), 9u);
}

TEST(DegradedModeTest, ClusterSurvivesRankDeathMidRun)
{
    // Full integration: 3-stage pipeline cluster, rank 1 killed after
    // iteration 6. Ranks 0 and 2 must finish all 15 iterations, keep
    // committing checkpoints locally, and the run must not hang.
    ClusterConfig config;
    config.nodes = 3;
    config.stage_time = 0.001;
    config.partition_bytes = 32 * 1024;
    config.activation_bytes = 1024;
    config.gpu = fast_gpu();
    config.network.nic_bytes_per_sec = 0;
    config.network.latency = 0;
    config.coordinate = true;
    config.coordinate_timeout = 0.02;
    config.kill_rank = 1;
    config.kill_at_iter = 6;

    PipelineCluster cluster(config);
    std::vector<std::unique_ptr<MemStorage>> devices(3);
    const auto factory =
        [&](const ClusterNode& node) -> PipelineCluster::NodeCheckpointer {
        const auto index = static_cast<std::size_t>(node.rank);
        devices[index] = std::make_unique<MemStorage>(
            SlotStore::required_size(3, config.partition_bytes));
        PCcheckConfig pc;
        pc.concurrent_checkpoints = 2;
        auto checkpointer = std::make_unique<PCcheckCheckpointer>(
            *node.state, *devices[index], pc);
        PCcheckCheckpointer* raw = checkpointer.get();
        return {std::move(checkpointer), [raw] {
                    const auto latest =
                        raw->commit_protocol().latest_pointer();
                    return latest ? latest->iteration : 0;
                }};
    };
    const ClusterResult result = cluster.run(15, 5, factory);

    EXPECT_TRUE(result.degraded);
    EXPECT_GE(result.coordinate_timeouts, 1u);
    // Survivors committed every checkpoint (iterations 5, 10, 15).
    EXPECT_EQ(result.node_stats[0].completed, 3u);
    EXPECT_EQ(result.node_stats[2].completed, 3u);
    // The dead rank stopped after its first checkpoint.
    EXPECT_LE(result.node_stats[1].completed, 2u);
    // Survivor partitions recover to their newest local checkpoint —
    // local checkpointing kept working after the death.
    for (const int rank : {0, 2}) {
        std::vector<std::uint8_t> buffer;
        const auto recovered = recover_to_buffer(
            *devices[static_cast<std::size_t>(rank)], &buffer);
        ASSERT_TRUE(recovered.has_value()) << "rank " << rank;
        EXPECT_EQ(recovered->iteration, 15u) << "rank " << rank;
    }
}

TEST(DegradedModeTest, PermanentErrorsAbortWithoutLeakingSlots)
{
    // Regression for the ticket/slot leak: permanent storage errors
    // mid-checkpoint must abort the attempt and recycle the slot, so
    // later checkpoints still find capacity and a durable checkpoint
    // still exists at the end.
    const std::uint64_t aborted_before =
        MetricsRegistry::global()
            .counter("pccheck.checkpoints.aborted")
            .value();

    auto injector = std::make_shared<FaultInjector>(11);
    FaultyStorage device(
        std::make_unique<MemStorage>(SlotStore::required_size(3, kState)),
        injector);

    SimGpu gpu(fast_gpu());
    TrainingState state(gpu, kState);
    PCcheckConfig config;
    config.concurrent_checkpoints = 2;
    // Format cleanly, then arm: formatting is a must-succeed path.
    PCcheckCheckpointer checkpointer(state, device, config);
    FaultRule rule;
    rule.point = "*";
    rule.action = FaultAction::kPermanent;
    rule.trigger = FaultTrigger::kEveryNthOp;
    rule.nth = 37;
    rule.limit = 4;
    injector->set_plan(FaultPlan{}.add(rule));
    TrainingLoop loop(gpu, state, tiny_model());
    loop.run(20, 2, checkpointer);

    const CheckpointerStats stats = checkpointer.stats();
    EXPECT_EQ(stats.requested, 10u);
    EXPECT_EQ(stats.completed + stats.aborted, stats.requested);
    const std::uint64_t publish_failures =
        checkpointer.commit_protocol().publish_failures();
    // Unless every permanent error landed in a publish (vanishingly
    // unlikely — data writes dominate the op stream), attempts were
    // aborted and the metric moved with them.
    if (stats.aborted > 0) {
        EXPECT_GE(MetricsRegistry::global()
                      .counter("pccheck.checkpoints.aborted")
                      .value(),
                  aborted_before + stats.aborted);
    }
    EXPECT_GE(stats.aborted + publish_failures, 1u);

    // No slot leak: a failed publish rolls the in-memory CHECK_ADDR
    // back and recycles the winner's slot, so after the run drains the
    // full capacity is reservable — except when two publish failures
    // raced and one rollback lost, which parks at most one slot until
    // a later winner publishes durably.
    std::vector<CheckpointTicket> tickets;
    const std::uint64_t reservable = publish_failures > 0 ? 1 : 2;
    for (std::uint64_t i = 0; i < reservable; ++i) {
        CheckpointTicket ticket;
        ASSERT_TRUE(checkpointer.commit_protocol().try_begin(&ticket))
            << "slot leaked after " << stats.aborted << " aborts";
        tickets.push_back(ticket);
    }
    for (const CheckpointTicket& ticket : tickets) {
        checkpointer.commit_protocol().abort(ticket);
    }

    // The paper's invariant held throughout: aborted attempts never
    // destroyed the previously committed checkpoint.
    std::vector<std::uint8_t> buffer;
    const auto recovered = recover_to_buffer(device, &buffer);
    ASSERT_TRUE(recovered.has_value());
    EXPECT_EQ(TrainingState::verify_buffer(buffer.data(), buffer.size()),
              std::make_optional(recovered->iteration));
}

TEST(DegradedModeTest, TransientStormLosesNoCheckpoints)
{
    // ~5% of storage ops fail transiently; the retry loop must
    // absorb all of it — every requested checkpoint completes, no slot
    // leaks, and the retry counters record the recovered errors.
    const std::uint64_t retries_before =
        MetricsRegistry::global()
            .counter("pccheck.storage.retries")
            .value();

    auto injector = std::make_shared<FaultInjector>(23);
    FaultyStorage device(
        std::make_unique<MemStorage>(SlotStore::required_size(3, kState)),
        injector);

    SimGpu gpu(fast_gpu());
    TrainingState state(gpu, kState);
    PCcheckConfig config;
    config.concurrent_checkpoints = 2;
    config.storage_retry.base_delay = 2e-6;  // keep the test fast
    config.storage_retry.max_delay = 20e-6;
    config.retry_seed = 23;
    PCcheckCheckpointer checkpointer(state, device, config);
    FaultRule rule;
    rule.point = "*";
    rule.action = FaultAction::kTransient;
    rule.trigger = FaultTrigger::kProbability;
    rule.probability = 0.05;
    injector->set_plan(FaultPlan{}.add(rule));
    TrainingLoop loop(gpu, state, tiny_model());
    loop.run(20, 2, checkpointer);

    const CheckpointerStats stats = checkpointer.stats();
    EXPECT_EQ(stats.requested, 10u);
    EXPECT_EQ(stats.completed, 10u);
    EXPECT_EQ(stats.aborted, 0u);
    EXPECT_GT(injector->injected(), 0u);
    EXPECT_GT(MetricsRegistry::global()
                  .counter("pccheck.storage.retries")
                  .value(),
              retries_before);

    // Full capacity still available.
    CheckpointTicket a;
    CheckpointTicket b;
    ASSERT_TRUE(checkpointer.commit_protocol().try_begin(&a));
    ASSERT_TRUE(checkpointer.commit_protocol().try_begin(&b));
    checkpointer.commit_protocol().abort(a);
    checkpointer.commit_protocol().abort(b);

    std::vector<std::uint8_t> buffer;
    const auto recovered = recover_to_buffer(device, &buffer);
    ASSERT_TRUE(recovered.has_value());
    EXPECT_EQ(recovered->iteration, 20u);
}

}  // namespace
}  // namespace pccheck
