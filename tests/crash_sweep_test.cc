/**
 * @file
 * Crash-monkey sweep: the paper's central invariant ("at any crash
 * point, recovery finds at least one fully persisted checkpoint")
 * checked empirically at scale. Each seed runs the full training loop
 * with N concurrent checkpoints over CrashSimStorage behind a
 * FaultyStorage decorator, fires a crash trigger at a seed-chosen
 * storage-op index, captures the adversarial post-crash media image,
 * recovers from it, validates the CRC-checked stamp, and resumes
 * training from the recovered state.
 *
 * Runs 64 seeds by default; set PCCHECK_CRASH_SWEEP_SEEDS to widen
 * (bench/crash_sweep.cc runs the 200+-seed version). Every failure
 * is replayable from its printed seed and crash-op index.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/orchestrator.h"
#include "core/recovery.h"
#include "core/slot_store.h"
#include "faults/fault.h"
#include "faults/faulty_storage.h"
#include "psan/psan.h"
#include "storage/crash_sim.h"
#include "storage/mem_storage.h"
#include "trainsim/models.h"
#include "trainsim/training_loop.h"
#include "util/annotations.h"
#include "util/check.h"
#include "util/rng.h"

namespace pccheck {
namespace {

constexpr Bytes kState = 16 * 1024;
constexpr int kConcurrent = 2;
constexpr int kSlots = kConcurrent + 1;

GpuConfig
fast_gpu()
{
    GpuConfig config;
    config.memory_bytes = 2 * kMiB;
    config.pcie_bytes_per_sec = 0;
    return config;
}

ScaledModel
tiny_model()
{
    return scale_model(model_by_name("vgg16"),
                       ScaleFactors{600.0, 20000.0});
}

struct SweepConfig {
    std::uint64_t warmup_iters = 4;
    std::uint64_t main_iters = 14;
    std::uint64_t interval = 2;
    /** Extra FaultPlan spec active alongside the crash trigger. */
    std::string noise;
};

/**
 * Asserts the enclosing scope reported no psan violations
 * (docs/PSAN.md). Vacuous when the sanitizer is off; under
 * PCCHECK_PSAN=1 every seed of the sweep must run contract-clean.
 */
class PsanCleanGuard {
  public:
    PsanCleanGuard() : before_(psan::Runtime::global().violation_count()) {}
    ~PsanCleanGuard()
    {
        EXPECT_EQ(psan::Runtime::global().violation_count(), before_)
            << "sweep must be psan-clean";
    }

  private:
    std::uint64_t before_;
};

struct SeedRun {
    std::uint64_t ops_after_warmup = 0;
    std::uint64_t ops_total = 0;
    bool crashed = false;
    /** Latest durable iteration before faults were armed. */
    std::uint64_t warm_iteration = 0;
    /** Latest durable iteration at the clean end of the run. */
    std::uint64_t final_iteration = 0;
    /** Post-crash media image (empty unless crashed). */
    std::vector<std::uint8_t> image;
};

/**
 * One full train → crash-capture → drain cycle. With @p crash_op == 0
 * no crash trigger is armed (calibration: measures the op-stream
 * length, which is deterministic for a noise-free plan).
 */
SeedRun
run_training(std::uint64_t seed, std::uint64_t crash_op,
             const SweepConfig& sweep)
{
    SeedRun out;
    auto injector = std::make_shared<FaultInjector>(seed);
    auto media_owned = std::make_unique<CrashSimStorage>(
        SlotStore::required_size(kSlots, kState), StorageKind::kPmemNt,
        seed, 0.5);
    CrashSimStorage* media = media_owned.get();
    FaultyStorage device(std::move(media_owned), injector);

    SimGpu gpu(fast_gpu());
    TrainingState state(gpu, kState);
    PCcheckConfig config;
    config.concurrent_checkpoints = kConcurrent;
    config.retry_seed = seed;

    {
        // Warmup with no faults armed: establishes the first durable
        // checkpoints so the invariant is live for the rest of the run.
        PCcheckCheckpointer warm(state, device, config);
        TrainingLoop loop(gpu, state, tiny_model());
        loop.run(sweep.warmup_iters, sweep.interval, warm);
        const auto latest = warm.commit_protocol().latest_pointer();
        PCCHECK_CHECK(latest.has_value());
        out.warm_iteration = latest->iteration;
    }
    out.ops_after_warmup = injector->ops();

    FaultPlan plan;
    if (crash_op > 0) {
        FaultRule crash;
        crash.point = "*";
        crash.action = FaultAction::kCrash;
        crash.trigger = FaultTrigger::kNthOp;
        crash.nth = crash_op;
        crash.limit = 1;
        plan.add(crash);  // first so noise rules cannot shadow it
    }
    const FaultPlan noise_plan = FaultPlan::parse(sweep.noise);
    for (const FaultRule& rule : noise_plan.rules()) {
        plan.add(rule);
    }
    Mutex image_mu;
    injector->set_crash_handler([&out, &image_mu, media] {
        MutexLock lock(image_mu);
        out.image = media->crash_image();
    });
    injector->set_plan(std::move(plan));

    {
        PCcheckCheckpointer main(state, device, config);
        TrainingLoop loop(gpu, state, tiny_model());
        loop.run(sweep.main_iters, sweep.interval, main,
                 sweep.warmup_iters + 1);
        const auto latest = main.commit_protocol().latest_pointer();
        PCCHECK_CHECK(latest.has_value());
        out.final_iteration = latest->iteration;
        // Slot-leak check: after draining, all N+1 slots must be
        // accounted for — N reservable plus the published one.
        std::vector<CheckpointTicket> tickets;
        for (int i = 0; i < kConcurrent; ++i) {
            CheckpointTicket ticket;
            PCCHECK_CHECK_MSG(main.commit_protocol().try_begin(&ticket),
                              "slot leaked during faulted run");
            tickets.push_back(ticket);
        }
        for (const CheckpointTicket& ticket : tickets) {
            main.commit_protocol().abort(ticket);
        }
    }
    out.ops_total = injector->ops();
    out.crashed = injector->crashes() > 0;
    return out;
}

int
sweep_seeds(int fallback)
{
    const char* env = std::getenv("PCCHECK_CRASH_SWEEP_SEEDS");
    if (env != nullptr && std::atoi(env) > 0) {
        return std::atoi(env);
    }
    return fallback;
}

/** Recover + validate one captured crash image; returns the
 *  recovered iteration (asserts on any invariant violation). */
std::uint64_t
check_crash_image(const SeedRun& run, const SweepConfig& sweep,
                  std::uint64_t seed, std::uint64_t crash_op)
{
    MemStorage dead(run.image.size());
    std::memcpy(dead.raw(), run.image.data(), run.image.size());
    std::vector<std::uint8_t> buffer;
    const auto recovered = recover_to_buffer(dead, &buffer);
    // THE invariant: a fully persisted checkpoint always exists.
    EXPECT_TRUE(recovered.has_value())
        << "invariant violated: no recoverable checkpoint, seed " << seed
        << " crash_op " << crash_op;
    if (!recovered.has_value()) {
        return 0;
    }
    EXPECT_GE(recovered->iteration, run.warm_iteration)
        << "durable checkpoint regressed, seed " << seed << " crash_op "
        << crash_op;
    EXPECT_LE(recovered->iteration,
              sweep.warmup_iters + sweep.main_iters);
    EXPECT_EQ(recovered->iteration % sweep.interval, 0u);
    // Recovery already validated the stored CRC; the stamp check
    // additionally proves the bytes are the iteration's actual state.
    EXPECT_EQ(TrainingState::verify_buffer(buffer.data(), buffer.size()),
              std::make_optional(recovered->iteration))
        << "seed " << seed << " crash_op " << crash_op;
    return recovered->iteration;
}

TEST(CrashSweepTest, InvariantHoldsAtRandomCrashPoints)
{
    PsanCleanGuard psan_clean;
    const SweepConfig sweep;
    // Calibrate the op-stream length once (deterministic workload).
    const SeedRun calib = run_training(12345, 0, sweep);
    ASSERT_GT(calib.ops_total, calib.ops_after_warmup);

    const int seeds = sweep_seeds(64);
    int crashed = 0;
    for (int s = 1; s <= seeds; ++s) {
        const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(s);
        Rng pick(seed * 0x9E3779B97F4A7C15ULL);
        const std::uint64_t crash_op =
            calib.ops_after_warmup + 1 +
            pick.next_below(calib.ops_total - calib.ops_after_warmup);
        const SeedRun run = run_training(seed, crash_op, sweep);
        if (!run.crashed) {
            // Only legitimate when this run's op stream ended before
            // the chosen index; anything else is a harness bug.
            ASSERT_GT(crash_op, run.ops_total)
                << "crash trigger silently skipped, seed " << seed;
            continue;
        }
        ++crashed;
        const std::uint64_t recovered_iteration =
            check_crash_image(run, sweep, seed, crash_op);
        if (recovered_iteration == 0) {
            continue;
        }

        // Resume: a fresh "process" recovers from the post-crash
        // media and keeps training (and checkpointing) on top of it.
        MemStorage dead(run.image.size());
        std::memcpy(dead.raw(), run.image.data(), run.image.size());
        SimGpu gpu(fast_gpu());
        TrainingState state(gpu, kState);
        const auto loaded = recover_into_state(dead, state);
        ASSERT_TRUE(loaded.has_value());
        ASSERT_EQ(loaded->iteration, recovered_iteration);
        PCcheckConfig config;
        config.concurrent_checkpoints = kConcurrent;
        PCcheckCheckpointer resumed(state, dead, config);
        TrainingLoop loop(gpu, state, tiny_model());
        loop.run(4, sweep.interval, resumed, loaded->iteration + 1);
        const auto after = resumed.commit_protocol().latest_pointer();
        ASSERT_TRUE(after.has_value());
        EXPECT_GT(after->iteration, recovered_iteration)
            << "resume made no durable progress, seed " << seed;
    }
    // The sweep is meaningless if the triggers never fired.
    EXPECT_GE(crashed, seeds * 9 / 10);
}

TEST(CrashSweepTest, InvariantHoldsUnderTransientNoise)
{
    PsanCleanGuard psan_clean;
    // Same sweep with a lossy device: ~1% of persists and 0.5% of
    // writes fail transiently, exercising the retry path while the
    // crash can land inside a retry loop.
    SweepConfig sweep;
    sweep.noise =
        "storage.persist:transient@p=0.01;"
        "storage.write:transient@p=0.005";
    const SeedRun calib = run_training(777, 0, sweep);
    ASSERT_GT(calib.ops_total, calib.ops_after_warmup);

    const int seeds = sweep_seeds(64) / 4 + 1;
    int crashed = 0;
    for (int s = 1; s <= seeds; ++s) {
        const std::uint64_t seed = 5000 + static_cast<std::uint64_t>(s);
        Rng pick(seed * 0xBF58476D1CE4E5B9ULL);
        const std::uint64_t crash_op =
            calib.ops_after_warmup + 1 +
            pick.next_below(calib.ops_total - calib.ops_after_warmup);
        const SeedRun run = run_training(seed, crash_op, sweep);
        if (!run.crashed) {
            // Retries shift per-seed op counts, so a tail index can
            // fall past the end of a shorter stream; that seed simply
            // did not crash and verifies nothing.
            ASSERT_GT(crash_op, run.ops_total);
            continue;
        }
        ++crashed;
        check_crash_image(run, sweep, seed, crash_op);
    }
    // Transient noise shifts op counts, but most indices must land.
    EXPECT_GE(crashed, seeds / 2);
}

TEST(CrashSweepTest, CalibrationRunIsCleanAndDeterministic)
{
    PsanCleanGuard psan_clean;
    const SweepConfig sweep;
    const SeedRun a = run_training(42, 0, sweep);
    const SeedRun b = run_training(42, 0, sweep);
    EXPECT_FALSE(a.crashed);
    EXPECT_EQ(a.ops_after_warmup, b.ops_after_warmup);
    EXPECT_EQ(a.ops_total, b.ops_total);
    EXPECT_EQ(a.final_iteration, b.final_iteration);
    EXPECT_EQ(a.final_iteration,
              sweep.warmup_iters + sweep.main_iters);
}

}  // namespace
}  // namespace pccheck
