/**
 * @file
 * Unit and concurrency tests for the lock-free queues, SPSC ring,
 * latches, and thread pool.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "concurrent/latch.h"
#include "concurrent/mpmc_queue.h"
#include "concurrent/ms_queue.h"
#include "concurrent/spsc_ring.h"
#include "concurrent/thread_pool.h"

namespace pccheck {
namespace {

TEST(MpmcQueueTest, FifoSingleThread)
{
    MpmcBoundedQueue<int> queue(8);
    for (int i = 0; i < 8; ++i) {
        EXPECT_TRUE(queue.try_enqueue(i));
    }
    EXPECT_FALSE(queue.try_enqueue(99));  // full
    for (int i = 0; i < 8; ++i) {
        const auto v = queue.try_dequeue();
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, i);
    }
    EXPECT_FALSE(queue.try_dequeue().has_value());  // empty
}

TEST(MpmcQueueTest, CapacityRoundsToPowerOfTwo)
{
    MpmcBoundedQueue<int> queue(5);
    EXPECT_EQ(queue.capacity(), 8u);
}

TEST(MpmcQueueTest, WrapAroundPreservesFifo)
{
    MpmcBoundedQueue<int> queue(4);
    for (int round = 0; round < 100; ++round) {
        EXPECT_TRUE(queue.try_enqueue(round));
        const auto v = queue.try_dequeue();
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, round);
    }
}

/** Multi-producer multi-consumer: no loss, no duplication. */
template <typename Queue>
void
run_mpmc_stress(Queue& queue, int producers, int consumers,
                int items_per_producer)
{
    std::atomic<int> produced{0};
    std::atomic<int> consumed{0};
    std::atomic<long long> sum_consumed{0};
    std::vector<std::thread> threads;
    for (int producer = 0; producer < producers; ++producer) {
        threads.emplace_back([&, producer] {
            for (int i = 0; i < items_per_producer; ++i) {
                const int value = producer * items_per_producer + i;
                while (!queue.try_enqueue(value)) {
                    std::this_thread::yield();
                }
                produced.fetch_add(1);
            }
        });
    }
    const int total = producers * items_per_producer;
    for (int consumer = 0; consumer < consumers; ++consumer) {
        threads.emplace_back([&] {
            while (consumed.load() < total) {
                const auto v = queue.try_dequeue();
                if (v.has_value()) {
                    sum_consumed.fetch_add(*v);
                    consumed.fetch_add(1);
                } else {
                    std::this_thread::yield();
                }
            }
        });
    }
    for (auto& thread : threads) {
        thread.join();
    }
    EXPECT_EQ(consumed.load(), total);
    const long long expected =
        static_cast<long long>(total) * (total - 1) / 2;
    EXPECT_EQ(sum_consumed.load(), expected);
}

TEST(MpmcQueueTest, MultiProducerMultiConsumerStress)
{
    MpmcBoundedQueue<int> queue(64);
    run_mpmc_stress(queue, 3, 3, 400);
}

TEST(MsQueueTest, FifoSingleThread)
{
    MsQueue<int> queue(8);
    for (int i = 0; i < 8; ++i) {
        EXPECT_TRUE(queue.try_enqueue(i));
    }
    EXPECT_FALSE(queue.try_enqueue(99));  // pool exhausted
    for (int i = 0; i < 8; ++i) {
        const auto v = queue.try_dequeue();
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, i);
    }
    EXPECT_FALSE(queue.try_dequeue().has_value());
}

TEST(MsQueueTest, NodeReuseAfterDequeue)
{
    MsQueue<int> queue(2);
    for (int round = 0; round < 1000; ++round) {
        EXPECT_TRUE(queue.try_enqueue(round));
        EXPECT_TRUE(queue.try_enqueue(round + 1));
        EXPECT_EQ(queue.try_dequeue().value(), round);
        EXPECT_EQ(queue.try_dequeue().value(), round + 1);
    }
}

TEST(MsQueueTest, MultiProducerMultiConsumerStress)
{
    MsQueue<int> queue(64);
    run_mpmc_stress(queue, 3, 3, 400);
}

TEST(SpscRingTest, FifoAndBounds)
{
    SpscRing<int> ring(4);
    EXPECT_EQ(ring.capacity(), 4u);
    for (int i = 0; i < 4; ++i) {
        EXPECT_TRUE(ring.try_push(i));
    }
    EXPECT_FALSE(ring.try_push(99));
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(ring.try_pop().value(), i);
    }
    EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(SpscRingTest, ProducerConsumerStress)
{
    SpscRing<int> ring(16);
    constexpr int kItems = 20000;
    std::thread producer([&ring] {
        for (int i = 0; i < kItems; ++i) {
            while (!ring.try_push(i)) {
                std::this_thread::yield();
            }
        }
    });
    long long sum = 0;
    int received = 0;
    int last = -1;
    while (received < kItems) {
        const auto v = ring.try_pop();
        if (v.has_value()) {
            EXPECT_EQ(*v, last + 1);  // strict FIFO
            last = *v;
            sum += *v;
            ++received;
        }
    }
    producer.join();
    EXPECT_EQ(sum, static_cast<long long>(kItems) * (kItems - 1) / 2);
}

TEST(CountdownLatchTest, ReleasesAtZero)
{
    CountdownLatch latch(3);
    std::atomic<bool> released{false};
    std::thread waiter([&] {
        latch.wait();
        released.store(true);
    });
    latch.count_down();
    latch.count_down();
    EXPECT_FALSE(released.load());
    latch.count_down();
    waiter.join();
    EXPECT_TRUE(released.load());
}

TEST(CyclicBarrierTest, RendezvousRepeatedly)
{
    constexpr int kParties = 4;
    constexpr int kRounds = 20;
    CyclicBarrier barrier(kParties);
    std::atomic<int> counter{0};
    std::vector<std::thread> threads;
    std::atomic<bool> ok{true};
    for (int party = 0; party < kParties; ++party) {
        threads.emplace_back([&] {
            for (int round = 0; round < kRounds; ++round) {
                counter.fetch_add(1);
                barrier.arrive_and_wait();
                // After the barrier, all parties of this round arrived.
                if (counter.load() < (round + 1) * kParties) {
                    ok.store(false);
                }
                barrier.arrive_and_wait();
            }
        });
    }
    for (auto& thread : threads) {
        thread.join();
    }
    EXPECT_TRUE(ok.load());
    EXPECT_EQ(counter.load(), kParties * kRounds);
}

TEST(ThreadPoolTest, RunsAllTasks)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 100; ++i) {
        futures.push_back(pool.submit([&ran] { ran.fetch_add(1); }));
    }
    for (auto& future : futures) {
        future.get();
    }
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleBlocksUntilDrained)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 20; ++i) {
        pool.submit([&ran] {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            ran.fetch_add(1);
        });
    }
    pool.wait_idle();
    EXPECT_EQ(ran.load(), 20);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 10; ++i) {
            pool.submit([&ran] { ran.fetch_add(1); });
        }
    }
    EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(1);
    auto future = pool.submit([] { throw std::runtime_error("task"); });
    EXPECT_THROW(future.get(), std::runtime_error);
}

}  // namespace
}  // namespace pccheck
